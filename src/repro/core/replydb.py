"""The controller's bounded reply store (Algorithm 2, ``replyDB``).

Stores the most recent query reply per node, each stamped with the
synchronization-round tag the reply answered (the tag of *this*
controller's meta/echo rule inside the reply — the macro ``res(x)`` of
Algorithm 2, line 3).

Enforces the ``maxReplies`` bound with the C-reset of line 21: when an
arriving reply would overflow the store, everything except the
controller's own neighbourhood record is discarded.  Lemma 2 proves a
legal execution never C-resets; the property tests verify part (3) —
at most one C-reset per execution after bounds are respected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.tags import Tag
from repro.switch.commands import QueryReply


@dataclass(frozen=True)
class StoredReply:
    """A reply plus the round tag it belongs to (from our point of view)."""

    reply: QueryReply
    tag: Optional[Tag]


class ReplyDB:
    """Bounded map node → most recent reply."""

    def __init__(self, owner: str, max_replies: int) -> None:
        if max_replies < 2:
            raise ValueError("max_replies must allow at least self + one peer")
        self.owner = owner
        self.max_replies = max_replies
        self._entries: Dict[str, StoredReply] = {}
        self.c_resets = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: str) -> bool:
        return node in self._entries

    def nodes(self) -> List[str]:
        return sorted(self._entries)

    def get(self, node: str) -> Optional[StoredReply]:
        return self._entries.get(node)

    def entries(self) -> List[StoredReply]:
        return list(self._entries.values())

    # -- Algorithm 2 line 21-22: reply arrival --------------------------------

    def store(self, reply: QueryReply, tag: Optional[Tag], current_tag: Tag) -> bool:
        """Store ``reply`` if it answers the current round.

        Returns ``True`` when a C-reset occurred (for metrics).  Mirrors
        lines 20–22: overflow → C-reset; tag mismatch → discard.
        """
        reset = False
        if reply.node not in self._entries and len(self._entries) + 1 > self.max_replies:
            self._entries.clear()
            self.c_resets += 1
            reset = True
        if tag == current_tag:
            self._entries[reply.node] = StoredReply(reply=reply, tag=tag)
        return reset

    # -- Algorithm 2 line 8: stale pruning --------------------------------------

    def prune(
        self,
        keep_tags: Set[Tag],
        reachable: Dict[Tag, Set[str]],
    ) -> None:
        """Drop replies whose tag is stale or whose sender is unreachable in
        the graph accumulated for that tag (``pi →G(res(x)) pk``)."""
        survivors: Dict[str, StoredReply] = {}
        for node, stored in self._entries.items():
            if node == self.owner:
                continue  # our own record is regenerated fresh each iteration
            if stored.tag not in keep_tags:
                continue
            if node not in reachable.get(stored.tag, set()):
                continue
            survivors[node] = stored
        self._entries = survivors

    def drop_tag(self, tag: Tag) -> None:
        """Line 12: clear any (stale) replies already carrying a tag that is
        being introduced as the new current tag."""
        self._entries = {
            node: stored for node, stored in self._entries.items() if stored.tag != tag
        }

    # -- res(x) / fusion macros ---------------------------------------------------

    def res(self, tag: Tag) -> List[QueryReply]:
        """Replies answering round ``tag`` (line 3's ``res(x)``, minus the
        self entry, which callers append via their live neighbourhood)."""
        return [s.reply for s in self._entries.values() if s.tag == tag]

    def fusion(self, current: Tag, previous: Tag) -> List[QueryReply]:
        """``res(currTag)`` completed with ``res(prevTag)`` entries from
        nodes that have not answered the current round yet (line 5)."""
        current_replies = {r.node: r for r in self.res(current)}
        merged = dict(current_replies)
        for reply in self.res(previous):
            if reply.node not in merged:
                merged[reply.node] = reply
        return list(merged.values())

    def corrupt(self, entries: Iterable[Tuple[QueryReply, Optional[Tag]]]) -> None:
        """Transient-fault hook: plant arbitrary entries (bounded)."""
        for reply, tag in entries:
            self._entries[reply.node] = StoredReply(reply=reply, tag=tag)
            if len(self._entries) > self.max_replies:
                self._entries.pop(next(iter(self._entries)))


__all__ = ["ReplyDB", "StoredReply"]
