"""Configuration parameters of the Renaissance control plane.

Collects the constants of the paper's model (Figure 4 and Section 3.3):
κ (tolerated link failures), the switch memory bounds ``maxRules`` and
``maxManagers``, the controller's ``maxReplies``, the Θ detector threshold,
and the tag domain size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RenaissanceConfig:
    """Tunable parameters, with the paper's constraints enforced.

    ``max_replies`` must be ≥ 2·(NC + NS) (Section 4.2) so a legal
    execution never triggers a C-reset; :meth:`for_network` derives the
    bounds from the network dimensions.
    """

    kappa: int = 1
    max_rules: int = 100_000
    max_managers: int = 64
    max_replies: int = 4_096
    theta: int = 10
    tag_domain: int = 65_536
    #: Hop budget for in-band control packets (defends against transient
    #: forwarding loops caused by corrupted rules).
    packet_ttl: int = 64
    #: Plan rules from the *corroborated fusion* while discovery is
    #: unstable, instead of Algorithm 2's literal current-round snapshot.
    #: The literal rule tears down flows to nodes whose replies are merely
    #: in flight whenever reply round-trips exceed the iteration period —
    #: a limit cycle under bounded adversarial delivery schedulers — but
    #: its teardown is also the post-permanent-fault re-expansion
    #: mechanism, so the robust variant is opt-in: the adversarial
    #: self-stabilization axis (transient corruption, no permanent
    #: removals) enables it; the paper's figure experiments keep the
    #: literal behaviour bit-for-bit.
    robust_views: bool = False

    def __post_init__(self) -> None:
        if self.kappa < 0:
            raise ValueError("kappa must be >= 0")
        if self.max_rules < 1 or self.max_managers < 1 or self.max_replies < 2:
            raise ValueError("memory bounds must be positive")
        if self.theta < 1:
            raise ValueError("theta must be >= 1")
        if self.tag_domain < 8:
            raise ValueError("tag domain too small to stabilize")

    @property
    def n_priorities(self) -> int:
        """nprt: priorities 0 (meta) .. κ+1 (primary path)."""
        return self.kappa + 2

    @staticmethod
    def for_network(
        n_controllers: int,
        n_switches: int,
        kappa: int = 1,
        theta: int = 10,
        diameter: Optional[int] = None,
        robust_views: bool = False,
    ) -> "RenaissanceConfig":
        """Bounds satisfying Lemma 1 / Section 4.2 for given dimensions:
        maxManagers ≥ NC, maxRules ≥ NC·(NC+NS−1)·nprt (plus meta-rules),
        maxReplies ≥ 2·(NC+NS).

        ``diameter`` (when known) widens the rule bound for high-diameter
        graphs: the fast-failover construction installs one detour per
        primary-path edge, and on a graph of diameter D a single flow can
        therefore deposit up to D+1 rules at one switch — more than the
        nprt = κ+2 per-flow rules the paper's ladder-like topologies need.
        Under-provisioning ``max_rules`` is not a graceful degradation:
        once the legitimate rule set exceeds the bound, the clogged-memory
        LRU eviction makes controllers perpetually evict each other's live
        rules and the network can never reach a legitimate configuration
        (the ring:16/ring:20 bootstrap livelock).
        """
        n_total = n_controllers + n_switches
        per_flow = max(kappa + 2, (diameter or 0) + 1)
        return RenaissanceConfig(
            kappa=kappa,
            max_rules=max(
                64, 2 * n_controllers * (n_total - 1) * per_flow + n_controllers
            ),
            max_managers=max(4, n_controllers),
            max_replies=max(8, 2 * n_total),
            theta=theta,
            robust_views=robust_views,
        )


__all__ = ["RenaissanceConfig"]
