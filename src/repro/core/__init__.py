"""Renaissance: the paper's primary contribution (Algorithm 2).

A self-stabilizing, in-band, distributed SDN control plane: every
controller iteratively discovers the network, installs κ-fault-resilient
flows to every node, removes stale configuration, and synchronizes its
switch accesses in uniquely-tagged rounds.
"""

from repro.core.config import RenaissanceConfig
from repro.core.tags import Tag, TagGenerator, DELTA_SYNCH
from repro.core.replydb import ReplyDB
from repro.core.rules import RuleGenerator, build_view
from repro.core.controller import RenaissanceController
from repro.core.variants import NonAdaptiveController, ThreeTagController
from repro.core.legitimacy import (
    LegitimacyChecker,
    forwarding_path,
    flow_is_resilient,
)

__all__ = [
    "RenaissanceConfig",
    "Tag",
    "TagGenerator",
    "DELTA_SYNCH",
    "ReplyDB",
    "RuleGenerator",
    "build_view",
    "RenaissanceController",
    "NonAdaptiveController",
    "ThreeTagController",
    "LegitimacyChecker",
    "forwarding_path",
    "flow_is_resilient",
]
