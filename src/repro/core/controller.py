"""The Renaissance controller — Algorithm 2 of the paper.

Pure control logic, deliberately free of any transport or simulator
dependency: the do-forever body (:meth:`iterate`) *returns* the aggregated
command batches to send, and the owner (the simulation harness, or a unit
test) feeds replies back through :meth:`on_reply` and queries through
:meth:`on_query`.  This keeps every line of Algorithm 2 unit-testable in
isolation.

Line-by-line correspondence (Algorithm 2):

* line 8  → :meth:`_prune_reply_db`
* lines 9–12 → :meth:`_maybe_start_round`
* line 13 → :meth:`_reference_tag`
* lines 14–18 → :meth:`_prepare_switch_updates`
* line 19 → the batch list returned by :meth:`iterate`
* lines 20–22 → :meth:`on_reply` (C-reset inside :class:`ReplyDB`)
* line 23 → :meth:`on_query`
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.topology import Topology
from repro.core.config import RenaissanceConfig
from repro.core.tags import Tag, TagGenerator
from repro.core.replydb import ReplyDB
from repro.core.rules import RuleGenerator, build_view
from repro.switch.flow_table import Rule, META_PRIORITY
from repro.switch.abstract_switch import BOTTOM
from repro.switch.commands import (
    CommandBatch,
    NewRound,
    Query,
    QueryReply,
    make_batch,
)


class RenaissanceController:
    """One controller ``pi`` running Algorithm 2."""

    def __init__(
        self,
        cid: str,
        config: RenaissanceConfig,
        alive_neighbors,
    ) -> None:
        self.cid = cid
        self.config = config
        self._alive_neighbors = alive_neighbors
        self.tags = TagGenerator(cid, domain=config.tag_domain)
        self.replydb = self._make_replydb()
        self.rulegen = RuleGenerator(cid, kappa=config.kappa)
        self.prev_tag: Tag = self.tags.next_tag()
        self.curr_tag: Tag = self.tags.next_tag()
        # Observability counters.
        self.iterations = 0
        self.rounds_completed = 0
        self.forced_restarts = 0
        self.batches_sent = 0
        self.last_new_round = False
        self.failed = False
        # Iterations the current round has been waiting on unanswered
        # nodes (the bounded round refresh of _maybe_start_round).
        self._round_age = 0

    @property
    def round_age(self) -> int:
        """Iterations the current round has been waiting on unanswered
        nodes — the forensics layer reads this to flag stuck rounds."""
        return self._round_age

    # -- hooks that variants override -------------------------------------------

    def _make_replydb(self) -> ReplyDB:
        return ReplyDB(self.cid, self.config.max_replies)

    def _cleanup_enabled(self) -> bool:
        """Whether stale managers/rules are actively deleted (the
        non-memory-adaptive variant of Section 8.1 turns this off)."""
        return True

    def _rules_to_install(self, view: Topology, switch_reply: QueryReply) -> List[Rule]:
        """Rules for one switch this round (the three-tag variant of
        Section 6.2 extends this with the previous round's rules)."""
        return self.rulegen.my_rules(view, switch_reply.node, self.curr_tag)

    # -- Algorithm 2 do-forever body ----------------------------------------------

    def iterate(self) -> List[Tuple[str, CommandBatch]]:
        """One complete iteration; returns ``(destination, batch)`` pairs."""
        if self.failed:
            return []
        self.iterations += 1
        neighbors = list(self._alive_neighbors())

        self._prune_reply_db(neighbors)
        new_round = self._maybe_start_round(neighbors)
        self.last_new_round = new_round

        refer_tag, refer_view = self._reference_tag(neighbors)
        updates = self._prepare_switch_updates(refer_tag, refer_view, new_round, neighbors)

        fusion_view = build_view(
            self.cid, neighbors, self.replydb.fusion(self.curr_tag, self.prev_tag)
        )
        reachable = set(fusion_view.bfs_layers(self.cid))
        reachable.discard(self.cid)

        batches: List[Tuple[str, CommandBatch]] = []
        for node in sorted(reachable):
            if node in updates:
                batch = updates[node]
            else:
                batch = CommandBatch(
                    sender=self.cid,
                    commands=(NewRound(self.curr_tag), Query(self.curr_tag)),
                )
            batches.append((node, batch))
        self.batches_sent += len(batches)
        return batches

    # line 8
    def _prune_reply_db(self, neighbors: Sequence[str]) -> None:
        # Reachability is evaluated against the *fusion* graph — the
        # controller's best current knowledge — not per-tag remnants.
        # Per-tag graphs G(res(x)) shrink as nodes re-answer the newer
        # round (the reply store keeps one entry per node), so when reply
        # round-trips span iteration boundaries the previous round's
        # leftover entries form a disconnected far remnant and would be
        # pruned as "unreachable", erasing live nodes from the view and
        # flapping their flows.  The adversarial delivery schedulers
        # (bounded worst-case delay, RTT > task period) hit this reliably
        # on high-diameter rings; the fusion graph keeps the prune's
        # intent — stale tags and genuinely unreachable senders still go —
        # without the artifact.
        fusion_view = build_view(
            self.cid, neighbors, self.replydb.fusion(self.curr_tag, self.prev_tag)
        )
        reach = set(fusion_view.bfs_layers(self.cid))
        self.replydb.prune(
            keep_tags={self.curr_tag, self.prev_tag},
            reachable={self.curr_tag: reach, self.prev_tag: reach},
        )

    # lines 9-12, plus the bounded round refresh
    def _maybe_start_round(self, neighbors: Sequence[str]) -> bool:
        current = self.replydb.res(self.curr_tag)
        view = build_view(self.cid, neighbors, current)
        answered = {r.node for r in current} | {self.cid}
        reachable = set(view.bfs_layers(self.cid))
        if not reachable.issubset(answered):
            # Bounded round refresh.  A corrupted replyDB entry can assert
            # its own reachability — a fabricated reply from a phantom node
            # claiming adjacency to live switches is stamped with currTag,
            # so it never goes stale, poisons rule generation (routes
            # through a node that does not exist), and thereby keeps a real
            # node from ever answering: the round waits forever and the
            # poisoned entry is never pruned.  The adversarial
            # self-stabilization harness finds this livelock reliably.
            # Restarting a round that cannot complete within twice the
            # discovery timeout (2Θ iterations — benign failures are
            # detected and pruned after Θ probes, so legal executions never
            # trigger this) rotates the tag, after which only genuinely
            # answering nodes re-enter res() and the fabricated entry ages
            # out of {currTag, prevTag} and is pruned.
            self._round_age += 1
            if self._round_age < max(8, 2 * self.config.theta):
                return False
            self.forced_restarts += 1
        else:
            self.rounds_completed += 1
        self._round_age = 0
        self.prev_tag = self.curr_tag
        self.curr_tag = self.tags.next_tag(observed=self._observed_tags())
        self.replydb.drop_tag(self.curr_tag)
        return True

    def _observed_tags(self) -> List[Tag]:
        observed: List[Tag] = [self.curr_tag, self.prev_tag]
        for stored in self.replydb.entries():
            if isinstance(stored.tag, Tag):
                observed.append(stored.tag)
            for rule in stored.reply.rules:
                if rule.cid == self.cid and isinstance(rule.tag, Tag):
                    observed.append(rule.tag)
        return observed

    # line 13
    def _reference_tag(self, neighbors: Sequence[str]) -> Tuple[Tag, Topology]:
        """During legal executions the reference is the completed previous
        round; while the discovered topology is still changing it is the
        *current* round's fresh replies — ``G(res(currTag))``, not the
        fusion, which can still carry a stale reply from a node that died
        mid-round (line 13 / line 18 of Algorithm 2).

        Under ``config.robust_views`` the unstable branch instead plans
        from the **corroborated fusion**: current-round replies completed
        by previous-round fills that some *other* evidence (the
        controller's own neighbourhood or an admitted reply's adjacency)
        still names — a reply vouches for its neighbours, never for its
        own sender's liveness.  Rationale: the reply store keeps one
        entry per node, so nodes re-answering the new round *shrink*
        ``res(currTag)``'s complement — when reply round-trips exceed the
        iteration period (high-diameter networks under bounded
        adversarial delivery schedulers) the literal current-round view
        is persistently partial and planning from it tears down flows to
        nodes whose replies are merely in flight, a limit cycle the
        stabilization harness hits reliably.  The literal behaviour stays
        the default because its teardown doubles as the re-expansion
        mechanism after *permanent* faults (stale fills would otherwise
        keep planning routes through a removed switch until the bounded
        round refresh fires); the adversarial axis, whose workloads are
        pure transient corruption, opts in."""
        fusion_view = build_view(
            self.cid, neighbors, self.replydb.fusion(self.curr_tag, self.prev_tag)
        )
        prev_view = build_view(self.cid, neighbors, self.replydb.res(self.prev_tag))
        if self._same_graph(fusion_view, prev_view):
            return self.prev_tag, prev_view
        if self.config.robust_views:
            refer_view = build_view(
                self.cid, neighbors, self._corroborated_fusion(neighbors)
            )
        else:
            refer_view = build_view(
                self.cid, neighbors, self.replydb.res(self.curr_tag)
            )
        return self.curr_tag, refer_view

    def _corroborated_fusion(self, neighbors: Sequence[str]) -> List[QueryReply]:
        """Current-round replies plus the previous-round fills that other
        evidence corroborates (see :meth:`_reference_tag`)."""
        current = {r.node: r for r in self.replydb.res(self.curr_tag)}
        fills = {
            r.node: r
            for r in self.replydb.res(self.prev_tag)
            if r.node not in current
        }
        evidence: Set[str] = set(neighbors) | {self.cid}
        for reply in current.values():
            evidence.update(reply.neighbors)
        admitted = list(current.values())
        changed = True
        while changed and fills:
            changed = False
            for node in list(fills):
                if node in evidence:
                    reply = fills.pop(node)
                    admitted.append(reply)
                    evidence.update(reply.neighbors)
                    changed = True
        return admitted

    @staticmethod
    def _same_graph(a: Topology, b: Topology) -> bool:
        return a.nodes == b.nodes and a.links == b.links

    # lines 14-18
    def _prepare_switch_updates(
        self,
        refer_tag: Tag,
        refer_view: Topology,
        new_round: bool,
        neighbors: Sequence[str],
    ) -> Dict[str, CommandBatch]:
        prev_view = build_view(self.cid, neighbors, self.replydb.res(self.prev_tag))
        reachable_prev = set(prev_view.bfs_layers(self.cid))

        updates: Dict[str, CommandBatch] = {}
        for reply in self.replydb.res(refer_tag):
            if reply.kind != "switch":
                continue
            rule_owners = {r.cid for r in reply.rules}
            # Stale-state removal.  We follow Algorithm 1's semantics
            # (lines 9-11) and the prose of Section 4.1.2: on a new round,
            # remove any manager or rule owner that was not discovered
            # *reachable* during round prevTag — but "only when [pi] has
            # succeeded in discovering the network and bootstrapped
            # communication", i.e. only while the discovered topology is
            # quiescent (referTag == prevTag, line 13's stability signal).
            #
            # Two literal readings of Algorithm 2's line 15 livelock in
            # practice and are deliberately not used:
            # * requiring a kept manager to own rules in the snapshot makes
            #   each controller's own delete-then-query batch manufacture
            #   "manager without rules" evidence about live peers, so two
            #   controllers alternately erase each other forever;
            # * deleting while discovery is still expanding lets controllers
            #   carve the network into spheres of influence, erasing each
            #   other's flows at the borders faster than they are rebuilt,
            #   which freezes discovery on diameter-10+ networks.
            manager_dels: List[str] = []
            rule_dels: List[str] = []
            discovery_quiescent = refer_tag == self.prev_tag
            if new_round and discovery_quiescent and self._cleanup_enabled():
                manager_dels = sorted(
                    m
                    for m in set(reply.managers)
                    if m != self.cid and m not in reachable_prev
                )
                rule_dels = sorted(
                    owner
                    for owner in rule_owners
                    if owner != self.cid and owner not in reachable_prev
                )
            new_rules = self._rules_to_install(refer_view, reply)
            updates[reply.node] = make_batch(
                sender=self.cid,
                round_tag=self.curr_tag,
                manager_dels=manager_dels,
                rule_dels=rule_dels,
                new_rules=new_rules,
                query_tag=self.curr_tag,
            )
        return updates

    # -- message handlers -----------------------------------------------------------

    def on_reply(self, reply: QueryReply) -> bool:
        """Lines 20–22.  Returns ``True`` if a C-reset occurred."""
        if self.failed:
            return False
        return self.replydb.store(reply, self._extract_tag(reply), self.curr_tag)

    def _extract_tag(self, reply: QueryReply) -> Optional[Tag]:
        """The tag of *our* meta/echo rule inside the reply (``res`` macro)."""
        fallback: Optional[Tag] = None
        for rule in reply.rules:
            if rule.cid != self.cid:
                continue
            if rule.is_meta and isinstance(rule.tag, Tag):
                return rule.tag
            if isinstance(rule.tag, Tag):
                fallback = rule.tag
        return fallback

    def on_query(self, sender: str, tag: object) -> QueryReply:
        """Line 23: answer another controller's query with our local
        topology and the tag echo."""
        echo = Rule(
            cid=sender,
            sid=self.cid,
            src=BOTTOM,
            dst=BOTTOM,
            priority=META_PRIORITY,
            forward_to=None,
            tag=tag,
        )
        return QueryReply(
            node=self.cid,
            neighbors=tuple(self._alive_neighbors()),
            managers=(),
            rules=(echo,),
            kind="controller",
        )

    def on_batch(self, batch: CommandBatch) -> Optional[QueryReply]:
        """Controllers ignore every command except the query (Section 4.2)."""
        tag = batch.query_tag
        if tag is None:
            return None
        return self.on_query(batch.sender, tag)

    # -- views for inspection / legitimacy checking ------------------------------------

    def current_view(self) -> Topology:
        return build_view(
            self.cid,
            list(self._alive_neighbors()),
            self.replydb.fusion(self.curr_tag, self.prev_tag),
        )

    # -- fault hooks ---------------------------------------------------------------------

    def fail_stop(self) -> None:
        self.failed = True

    def recover(self) -> None:
        """Restart with empty volatile state (a recovered controller boots
        fresh, as Lemma 8's node-addition case assumes)."""
        self.failed = False
        self.replydb = self._make_replydb()
        self.rulegen.invalidate()
        self.prev_tag = self.tags.next_tag()
        self.curr_tag = self.tags.next_tag()
        self._round_age = 0

    def corrupt_tags(self, prev: Tag, curr: Tag) -> None:
        """Transient-fault hook: overwrite round state arbitrarily."""
        self.prev_tag = prev
        self.curr_tag = curr


__all__ = ["RenaissanceController"]
