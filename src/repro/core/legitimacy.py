"""Legitimate-state predicates (paper Definition 1) and data-plane checks.

The experiment harness needs to detect the instant the system (re)enters a
legitimate state — that instant defines the bootstrap/recovery times of
Figures 5–14.  :class:`LegitimacyChecker` evaluates Definition 1 against
ground truth:

1. every controller's accumulated view equals the live topology and covers
   exactly the reachable nodes;
2. every live switch is managed by exactly the live controllers;
3. the installed rules realize κ-fault-resilient forwarding between every
   controller and every node;
4. no stale state (rules/managers of failed controllers) remains.

Condition 3 is verified *operationally*: we walk packets through the actual
switch tables (:func:`forwarding_path`) rather than trusting the flow
planner, and re-walk under injected link failures (:func:`flow_is_resilient`)
— for κ = 1 the check is exhaustive over the failure space.

The probe runs a few times per simulated second, so its cost is kept
proportional to *what changed* rather than to the network size:

* :class:`RouteCache` memoizes walks and invalidates them per entry by
  intersecting each walk's recorded **visited set** with the dirty-node
  sets that topology and flow-table mutations publish.  A walk is a
  deterministic function of the operational neighbourhoods and rule tables
  of exactly the nodes it consulted (including failed branches), so an
  entry none of whose visited nodes is dirty replays identically —
  invalidation is exact, never heuristic.
* :class:`LegitimacyChecker` carries per-flow verdicts forward between
  probes and re-validates only flows whose cached walks were invalidated,
  draining the cache's dirty-pair feed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.topology import Topology, EdgeId, edge
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import EVENT_DETOUR, EVENT_PRIMARY, EVENT_START
from repro.switch.forwarding import next_hop


def _no_record(_node: str) -> None:
    pass


class WalkTrace:
    """Dependency record of one :func:`forwarding_path` walk.

    ``visited`` holds every node whose operational neighbourhood the walk
    consulted (including abandoned branches) — the walk result is a
    deterministic function of those nodes' state plus the consulted rule
    tables.  ``node_kinds`` maps each node whose *table* was consulted to
    the strongest rule-event kind that could perturb the walk there:
    ``EVENT_START`` where the walk missed on rules (a new ``detour_start``
    could rescue it), ``EVENT_PRIMARY`` where a primary rule was followed
    (only a primary change can redirect it — shadowed detour rules are
    invisible to an unstamped packet).  Relay hops never consult the
    table and carry no rule sensitivity at all.  ``stamped`` marks walks
    that travelled on a detour, where any rule of the header matters;
    ``failed`` marks walks with a dead branch.
    """

    __slots__ = ("visited", "node_kinds", "stamped", "failed")

    def __init__(self) -> None:
        self.visited: Set[str] = set()
        self.node_kinds: Dict[str, int] = {}
        self.stamped = False
        self.failed = False


def forwarding_path(
    topology: Topology,
    switches: Dict[str, AbstractSwitch],
    src: str,
    dst: str,
    ttl: int = 64,
    extra_failed: Optional[Set[EdgeId]] = None,
    trace: Optional[WalkTrace] = None,
) -> Optional[List[str]]:
    """Walk a packet with header ``(src, dst)`` through the switch tables.

    ``extra_failed`` marks additional links as down (hypothetical failures
    for resilience checking) on top of the live operational state.  The
    walk starts at ``src``: controllers try each of their operational ports
    in order (a dual-homed host's local failover); switches apply their
    rule tables.  Returns the node path, or ``None`` if dropped/looped.

    ``trace``, if given, collects the walk's dependency record — what
    lets :class:`RouteCache` invalidate exactly.
    """
    failed = extra_failed or set()
    if trace is not None:
        record = trace.visited.add
        record(src)
        record(dst)
    else:
        record = _no_record

    if not failed:
        # Fast path: No(node) is cached inside the topology until the next
        # mutation touching that node; the frozenset flavour feeds the
        # membership-heavy rule-applicability checks without per-hop copies.
        op_list = topology.operational_neighbors
        op_set = topology.operational_neighbor_set
    else:

        def op_list(node: str) -> List[str]:
            return [
                v
                for v in topology.operational_neighbors(node)
                if edge(node, v) not in failed
            ]

        def op_set(node: str) -> FrozenSet[str]:
            return frozenset(op_list(node))

    if src == dst:
        return [src]
    if dst in op_set(src):
        return [src, dst]  # rule-free direct delivery

    def walk(path: List[str], node: str) -> Optional[List[str]]:
        stamp: Optional[int] = None
        budget = ttl
        while node != dst:
            if budget <= 0:
                if trace is not None:
                    trace.failed = True
                return None
            budget -= 1
            record(node)
            if node not in switches:
                if trace is not None:
                    trace.failed = True
                return None  # a controller cannot relay data-plane packets
            usable = op_set(node)
            hop, stamp = next_hop(
                switches[node].table, src, dst, usable, stamp=stamp
            )
            if trace is not None:
                if dst not in usable:
                    # The table was consulted (no direct relay): a miss is
                    # start-sensitive, a followed rule primary-sensitive.
                    kind = EVENT_START if hop is None else EVENT_PRIMARY
                    if kind > trace.node_kinds.get(node, -1):
                        trace.node_kinds[node] = kind
                if hop is None:
                    trace.failed = True
                    return None
                if stamp is not None:
                    trace.stamped = True
            elif hop is None:
                return None
            path.append(hop)
            node = hop
        return path

    if src in switches:
        # A switch emits through its own flow table first (this is where
        # detour stamping happens when its primary out-link is down)...
        result = walk([src], src)
        if result is not None:
            return result
        # ...and, with no applicable rule of its own, tries its ports —
        # the query-by-neighbour bootstrap (Section 2.1.1): a reply from a
        # yet-unconfigured switch relays back through the neighbour that
        # delivered the query.
    for first_hop in op_list(src):
        result = walk([src, first_hop], first_hop)
        if result is not None:
            return result
    return None


class RouteCache:
    """Dependency-tracked memo of :func:`forwarding_path` results.

    ``network_sim.py`` re-resolves the in-band route for every control
    packet, and the legitimacy probe re-walks every controller↔node pair a
    few times per simulated second — almost always against rule tables and
    operational state that changed only at a handful of nodes since the
    last probe.  The cache keys on the full walk input ``(src, dst, ttl,
    extra_failed)`` and stores, with each result, the walk's **visited
    set**.  Topology mutations and flow-table version bumps are delivered
    through dirty listeners; at the next lookup the accumulated dirty
    nodes invalidate exactly the entries whose visited set they intersect.
    Everything else is carried forward — during convergence, when every
    round mutates a few tables, this is the difference between O(changed)
    and O(network) probe cost.

    ``epoch()`` is a single monotone counter bumped per published mutation
    (an O(1) read; it used to sum every table's version per lookup).

    ``incremental=False`` restores the legacy epoch-clearing behaviour
    (any mutation drops the whole memo) — kept as the baseline for the
    probe-scaling benchmark.

    Invalidated ``(src, dst)`` pairs accumulate for
    :meth:`drain_dirty_pairs`, which :class:`LegitimacyChecker` uses to
    carry per-flow verdicts across probes.  Cached paths are shared —
    callers must not mutate the returned lists.
    """

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        incremental: bool = True,
    ) -> None:
        self.topology = topology
        self.switches = switches
        self.incremental = incremental
        # key -> (result, visited frozenset, node sensitivity map).  The
        # map grades, per consulted switch, which rule events of the
        # entry's header can perturb the walk there: EVENT_PRIMARY (a
        # primary rule was followed — only primary changes matter, since
        # shadowed detours are invisible to an unstamped packet),
        # EVENT_START (the walk missed on rules there — a new
        # ``detour_start`` could also rescue it), EVENT_DETOUR (stamped or
        # hypothetical-failure walks — any rule of the header matters).
        # A rule event at ``sid`` invalidates an entry iff
        # ``sensitivity[sid] >= event kind``; switches where only a direct
        # relay happened carry no rule sensitivity at all.
        self._paths: Dict[
            Tuple, Tuple[Optional[List[str]], FrozenSet[str], Dict[str, int]]
        ] = {}
        # node -> keys of entries whose walk consulted it (inverted index).
        # Topology mutations at a node invalidate every such entry.
        self._deps: Dict[str, Set[Tuple]] = {}
        # (sid, src, dst) -> keys of entries with header (src, dst) whose
        # walk consulted sid's table.  A rule mutation only perturbs walks
        # of the same header through that switch, so table events
        # invalidate at this finer granularity.
        self._rule_deps: Dict[Tuple[str, str, str], Set[Tuple]] = {}
        # Dirty accumulators, flushed lazily at the next lookup; rule
        # events keep the strongest (lowest) kind seen per (sid, header).
        self._pending_nodes: Set[str] = set()
        self._pending_rules: Dict[Tuple[str, str, str], int] = {}
        # (src, dst) pairs of entries invalidated since the last drain.
        self._dirty_pairs: Set[Tuple[str, str]] = set()
        self._mutations = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        topology.add_dirty_listener(self._on_topology_dirty)
        for switch in switches.values():
            switch.table.add_version_listener(self._on_table_dirty)

    # -- dirty feed -----------------------------------------------------------

    def _on_topology_dirty(self, nodes: Tuple[str, ...]) -> None:
        self._mutations += 1
        self._pending_nodes.update(nodes)

    def _on_table_dirty(
        self, sid: str, events: Tuple[Tuple[str, str, int], ...]
    ) -> None:
        self._mutations += 1
        pending = self._pending_rules
        for src, dst, kind in events:
            triple = (sid, src, dst)
            prior = pending.get(triple)
            if prior is None or kind < prior:
                pending[triple] = kind

    def watch_switch(self, sid: str) -> None:
        """Subscribe to a switch added after construction; its node id is
        marked dirty so any walk that consulted the id before it existed
        (and failed there) is re-validated."""
        self.switches[sid].table.add_version_listener(self._on_table_dirty)
        self._mutations += 1
        self._pending_nodes.add(sid)

    def detach(self) -> None:
        """Unsubscribe from all mutation feeds (for short-lived caches)."""
        self.topology.remove_dirty_listener(self._on_topology_dirty)
        for switch in self.switches.values():
            switch.table.remove_version_listener(self._on_table_dirty)

    def epoch(self) -> int:
        """Monotone mutation counter of the routing state (O(1))."""
        return self._mutations

    def _flush_dirty(self) -> None:
        nodes = self._pending_nodes
        rules = self._pending_rules
        self._pending_nodes = set()
        self._pending_rules = {}
        if not self._paths:
            return
        if not self.incremental:
            # Legacy baseline: one mutation anywhere drops the whole memo.
            self.invalidations += 1
            for key in self._paths:
                self._dirty_pairs.add((key[0], key[1]))
            self._paths.clear()
            self._deps.clear()
            self._rule_deps.clear()
            return
        paths = self._paths
        doomed: Set[Tuple] = set()
        for node in nodes:
            keys = self._deps.pop(node, None)
            if keys:
                doomed |= keys
        for triple, kind in rules.items():
            keys = self._rule_deps.get(triple)
            if not keys:
                continue
            sid = triple[0]
            for key in keys:
                entry = paths.get(key)
                if entry is not None and entry[2].get(sid, -1) >= kind:
                    doomed.add(key)
        for key in doomed:
            entry = self._paths.pop(key, None)
            if entry is None:
                continue
            self.invalidations += 1
            self._dirty_pairs.add((key[0], key[1]))
            src, dst = key[0], key[1]
            for node in entry[1]:
                bucket = self._deps.get(node)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._deps[node]
            for node in entry[2]:
                rbucket = self._rule_deps.get((node, src, dst))
                if rbucket is not None:
                    rbucket.discard(key)
                    if not rbucket:
                        del self._rule_deps[(node, src, dst)]

    def drain_dirty_pairs(self) -> Set[Tuple[str, str]]:
        """Invalidated ``(src, dst)`` pairs since the last drain; the
        checker re-validates exactly these flows."""
        if self._pending_nodes or self._pending_rules:
            self._flush_dirty()
        pairs = self._dirty_pairs
        self._dirty_pairs = set()
        return pairs

    def path(
        self,
        src: str,
        dst: str,
        ttl: int = 64,
        extra_failed: Optional[Set[EdgeId]] = None,
    ) -> Optional[List[str]]:
        """Cached equivalent of :func:`forwarding_path`."""
        if self._pending_nodes or self._pending_rules:
            self._flush_dirty()
        key = (src, dst, ttl, frozenset(extra_failed) if extra_failed else None)
        entry = self._paths.get(key)
        if entry is not None:
            self.hits += 1
            return entry[0]
        self.misses += 1
        trace = WalkTrace()
        result = forwarding_path(
            self.topology,
            self.switches,
            src,
            dst,
            ttl=ttl,
            extra_failed=extra_failed,
            trace=trace,
        )
        frozen = frozenset(trace.visited)
        if extra_failed or trace.stamped:
            # Detour-travelling and hypothetical-failure walks can react
            # to any rule of their header anywhere they passed.
            node_sens = {n: EVENT_DETOUR for n in frozen if n in self.switches}
        else:
            node_sens = trace.node_kinds
        self._paths[key] = (result, frozen, node_sens)
        deps = self._deps
        rule_deps = self._rule_deps
        for node in frozen:
            bucket = deps.get(node)
            if bucket is None:
                deps[node] = {key}
            else:
                bucket.add(key)
        for node in node_sens:
            triple = (node, src, dst)
            rbucket = rule_deps.get(triple)
            if rbucket is None:
                rule_deps[triple] = {key}
            else:
                rbucket.add(key)
        return result


def flow_is_resilient(
    topology: Topology,
    switches: Dict[str, AbstractSwitch],
    src: str,
    dst: str,
    kappa: int,
    ttl: int = 64,
    _failed: Optional[Set[EdgeId]] = None,
    cache: Optional[RouteCache] = None,
) -> bool:
    """Does forwarding survive every combination of ≤ κ further failures?

    Recursively fails each link on the current working path and re-walks;
    links off the working path cannot affect it, so the recursion is
    complete (exhaustive for the failure sets that matter) while staying
    polynomial for the κ used in the paper's experiments (κ = 1).
    """
    failed = _failed or set()
    if cache is not None:
        path = cache.path(src, dst, ttl=ttl, extra_failed=failed)
    else:
        path = forwarding_path(
            topology, switches, src, dst, ttl=ttl, extra_failed=failed
        )
    if path is None:
        return False
    if kappa == 0:
        return True
    for u, v in zip(path, path[1:]):
        e = edge(u, v)
        if not flow_is_resilient(
            topology,
            switches,
            src,
            dst,
            kappa - 1,
            ttl=ttl,
            _failed=failed | {e},
            cache=cache,
        ):
            return False
    return True


class LegitimacyChecker:
    """Definition 1 evaluated against simulation ground truth.

    When constructed with a :class:`RouteCache`, per-flow verdicts are
    carried across probes: ``flows_operational``/``flows_resilient`` first
    drain the cache's invalidated-pair feed, drop only those verdicts, and
    re-walk only those flows.  Because cache invalidation is exact, the
    carried verdicts are exactly what a fresh evaluation would compute —
    the equivalence property tests assert this against a cache-less
    checker over random mutation sequences.
    """

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        controllers: Dict[str, "RenaissanceController"],
        kappa: int,
        route_cache: Optional[RouteCache] = None,
    ) -> None:
        self.topology = topology
        self.switches = switches
        self.controllers = controllers
        self.kappa = kappa
        self.route_cache = route_cache
        # Carried verdicts per ordered (src, dst) pair, maintained only
        # when a route cache feeds us exact invalidations.
        self._path_ok: Dict[Tuple[str, str], bool] = {}
        self._resilient_ok: Dict[Tuple[str, str], bool] = {}
        self._resilient_kappa: Optional[int] = None
        # Probe-scope caches validated against topology.version.
        self._kappa_cache: Optional[Tuple[int, int]] = None
        self._live_cache: Optional[Tuple[int, Topology]] = None
        self._truth_version: Optional[int] = None
        self._truth_cache: Dict[str, Tuple[Set[str], Set[Tuple[str, str]]]] = {}

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        if self.route_cache is not None:
            return self.route_cache.path(src, dst)
        return forwarding_path(self.topology, self.switches, src, dst)

    def _sync_verdicts(self) -> bool:
        """Drop verdicts of flows whose cached walks were invalidated.
        Returns whether verdict carrying is active at all."""
        cache = self.route_cache
        if cache is None:
            return False
        for pair in cache.drain_dirty_pairs():
            self._path_ok.pop(pair, None)
            self._resilient_ok.pop(pair, None)
        return True

    # -- live sets -------------------------------------------------------------

    def live_controllers(self) -> List[str]:
        return [
            cid
            for cid, ctrl in self.controllers.items()
            if not ctrl.failed and self.topology.node_is_up(cid) and cid in self.topology
        ]

    def live_switches(self) -> List[str]:
        return [
            sid
            for sid in self.switches
            if sid in self.topology and self.topology.node_is_up(sid)
        ]

    # -- Definition 1 conditions --------------------------------------------------

    def views_accurate(self, live_controllers: Optional[List[str]] = None) -> bool:
        """Condition 1: each controller's fused view equals the live
        reachable topology."""
        if live_controllers is None:
            live_controllers = self.live_controllers()
        for cid in live_controllers:
            view = self.controllers[cid].current_view()
            truth_nodes, truth_links = self._live_truth(cid)
            if set(view.nodes) != truth_nodes:
                return False
            if set(view.links) != truth_links:
                return False
        return True

    def _live_truth(self, cid: str) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Ground-truth reachable live nodes and operational links from
        ``cid`` — a pure function of the topology, memoized per version."""
        version = self.topology.version
        if self._truth_version != version:
            self._truth_cache.clear()
            self._truth_version = version
        cached = self._truth_cache.get(cid)
        if cached is None:
            truth_nodes = self._reachable_live_nodes(cid)
            truth_links = {
                (u, v)
                for u, v in self.topology.links
                if u in truth_nodes and v in truth_nodes
                and self.topology.link_operational(u, v)
            }
            cached = (truth_nodes, truth_links)
            self._truth_cache[cid] = cached
        return cached

    def _reachable_live_nodes(self, source: str) -> Set[str]:
        return set(self.topology.bfs_layers(source, operational_only=True))

    def managers_correct(
        self,
        live_controllers: Optional[List[str]] = None,
        live_switches: Optional[List[str]] = None,
    ) -> bool:
        """Condition 2 (plus stale cleanup): every live switch is managed by
        exactly the live controllers."""
        if live_controllers is None:
            live_controllers = self.live_controllers()
        if live_switches is None:
            live_switches = self.live_switches()
        expected = set(live_controllers)
        for sid in live_switches:
            if set(self.switches[sid].managers.members()) != expected:
                return False
        return True

    def no_stale_rules(
        self,
        live_controllers: Optional[List[str]] = None,
        live_switches: Optional[List[str]] = None,
    ) -> bool:
        """Rules of failed/removed controllers are fully cleaned up."""
        if live_controllers is None:
            live_controllers = self.live_controllers()
        if live_switches is None:
            live_switches = self.live_switches()
        live = set(live_controllers)
        for sid in live_switches:
            owners = set(self.switches[sid].table.controllers_present())
            if not owners.issubset(live):
                return False
        return True

    def flows_operational(
        self,
        live_controllers: Optional[List[str]] = None,
        live_switches: Optional[List[str]] = None,
    ) -> bool:
        """Condition 3, fast mode: zero-failure forwarding works both ways
        between every live controller and every live node."""
        if live_controllers is None:
            live_controllers = self.live_controllers()
        if live_switches is None:
            live_switches = self.live_switches()
        carrying = self._sync_verdicts()
        verdicts = self._path_ok
        live_nodes = live_switches + live_controllers
        for cid in live_controllers:
            for node in live_nodes:
                if node == cid:
                    continue
                for pair in ((cid, node), (node, cid)):
                    verdict = verdicts.get(pair) if carrying else None
                    if verdict is None:
                        verdict = self._path(pair[0], pair[1]) is not None
                        if carrying:
                            verdicts[pair] = verdict
                    if not verdict:
                        return False
        return True

    def flows_resilient(
        self,
        live_controllers: Optional[List[str]] = None,
        live_switches: Optional[List[str]] = None,
    ) -> bool:
        """Condition 3, full mode: κ-failure resilience, exhaustive for the
        experiment's κ."""
        if live_controllers is None:
            live_controllers = self.live_controllers()
        if live_switches is None:
            live_switches = self.live_switches()
        carrying = self._sync_verdicts()
        kappa = self._achievable_kappa()
        if kappa != self._resilient_kappa:
            # A connectivity change can flip resilience either way (a κ
            # drop makes a previously-failing flow pass); carried verdicts
            # computed under the old κ are void wholesale.
            self._resilient_ok.clear()
            self._resilient_kappa = kappa
        verdicts = self._resilient_ok
        live_nodes = live_switches + live_controllers
        for cid in live_controllers:
            for node in live_nodes:
                if node == cid:
                    continue
                verdict = verdicts.get((cid, node)) if carrying else None
                if verdict is None:
                    verdict = flow_is_resilient(
                        self.topology,
                        self.switches,
                        cid,
                        node,
                        kappa,
                        cache=self.route_cache,
                    )
                    if carrying:
                        verdicts[(cid, node)] = verdict
                if not verdict:
                    return False
        return True

    def _achievable_kappa(self) -> int:
        """After permanent failures the live topology may no longer be
        (κ+1)-edge-connected; Lemma 7/8 then only promise κ̃ < κ resilience.
        Memoized per topology version — the edge-connectivity max-flow is
        the single most expensive sub-check of a full probe."""
        version = self.topology.version
        if self._kappa_cache is not None and self._kappa_cache[0] == version:
            return self._kappa_cache[1]
        live = self._live_subgraph()
        connectivity = live.edge_connectivity()
        value = max(0, min(self.kappa, connectivity - 1))
        self._kappa_cache = (version, value)
        return value

    def _live_subgraph(self) -> Topology:
        version = self.topology.version
        if self._live_cache is not None and self._live_cache[0] == version:
            return self._live_cache[1]
        live = self.topology.copy()
        for node in list(live.nodes):
            if not live.node_is_up(node):
                live.remove_node(node)
        for u, v in live.failed_links():
            live.remove_link(u, v)
        self._live_cache = (version, live)
        return live

    # -- aggregate ------------------------------------------------------------------

    def is_legitimate(self, full: bool = False) -> bool:
        live_controllers = self.live_controllers()
        if not live_controllers:
            return False
        live_switches = self.live_switches()
        checks = (
            self.views_accurate(live_controllers)
            and self.managers_correct(live_controllers, live_switches)
            and self.no_stale_rules(live_controllers, live_switches)
            and self.flows_operational(live_controllers, live_switches)
        )
        if not checks:
            return False
        if full:
            return self.flows_resilient(live_controllers, live_switches)
        return True


__all__ = [
    "LegitimacyChecker",
    "RouteCache",
    "WalkTrace",
    "forwarding_path",
    "flow_is_resilient",
]
