"""Legitimate-state predicates (paper Definition 1) and data-plane checks.

The experiment harness needs to detect the instant the system (re)enters a
legitimate state — that instant defines the bootstrap/recovery times of
Figures 5–14.  :class:`LegitimacyChecker` evaluates Definition 1 against
ground truth:

1. every controller's accumulated view equals the live topology and covers
   exactly the reachable nodes;
2. every live switch is managed by exactly the live controllers;
3. the installed rules realize κ-fault-resilient forwarding between every
   controller and every node;
4. no stale state (rules/managers of failed controllers) remains.

Condition 3 is verified *operationally*: we walk packets through the actual
switch tables (:func:`forwarding_path`) rather than trusting the flow
planner, and re-walk under injected link failures (:func:`flow_is_resilient`)
— for κ = 1 the check is exhaustive over the failure space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.net.topology import Topology, EdgeId, edge
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.forwarding import next_hop


def forwarding_path(
    topology: Topology,
    switches: Dict[str, AbstractSwitch],
    src: str,
    dst: str,
    ttl: int = 64,
    extra_failed: Optional[Set[EdgeId]] = None,
) -> Optional[List[str]]:
    """Walk a packet with header ``(src, dst)`` through the switch tables.

    ``extra_failed`` marks additional links as down (hypothetical failures
    for resilience checking) on top of the live operational state.  The
    walk starts at ``src``: controllers try each of their operational ports
    in order (a dual-homed host's local failover); switches apply their
    rule tables.  Returns the node path, or ``None`` if dropped/looped.
    """
    failed = extra_failed or set()

    if not failed:
        # Fast path: No(node) is cached inside the topology until the next
        # mutation, saving the per-hop link_operational scan.
        operational_neighbors = topology.operational_neighbors
    else:

        def operational_neighbors(node: str) -> List[str]:
            return [
                v
                for v in topology.operational_neighbors(node)
                if edge(node, v) not in failed
            ]

    if src == dst:
        return [src]
    if dst in operational_neighbors(src):
        return [src, dst]  # rule-free direct delivery

    def walk(path: List[str], node: str) -> Optional[List[str]]:
        stamp: Optional[int] = None
        budget = ttl
        while node != dst:
            if budget <= 0:
                return None
            budget -= 1
            if node not in switches:
                return None  # a controller cannot relay data-plane packets
            hop, stamp = next_hop(
                switches[node].table, src, dst, operational_neighbors(node), stamp=stamp
            )
            if hop is None:
                return None
            path.append(hop)
            node = hop
        return path

    if src in switches:
        # A switch emits through its own flow table first (this is where
        # detour stamping happens when its primary out-link is down)...
        result = walk([src], src)
        if result is not None:
            return result
        # ...and, with no applicable rule of its own, tries its ports —
        # the query-by-neighbour bootstrap (Section 2.1.1): a reply from a
        # yet-unconfigured switch relays back through the neighbour that
        # delivered the query.
    for first_hop in operational_neighbors(src):
        result = walk([src, first_hop], first_hop)
        if result is not None:
            return result
    return None


class RouteCache:
    """Epoch-validated memo of :func:`forwarding_path` results.

    ``network_sim.py`` re-resolves the in-band route for every control
    packet, and the legitimacy probe re-walks every controller↔node pair a
    few times per simulated second — almost always against unchanged rule
    tables and operational state.  The cache keys on the full walk input
    ``(src, dst, ttl, extra_failed)`` and validates itself against a single
    integer *epoch*: the sum of the topology's mutation counter and every
    switch table's mutation counter.  Each counter is monotone, so any
    mutation anywhere strictly increases the epoch and the next lookup
    drops the whole memo.  Cached paths are shared — callers must not
    mutate the returned lists.
    """

    def __init__(self, topology: Topology, switches: Dict[str, AbstractSwitch]) -> None:
        self.topology = topology
        self.switches = switches
        self._paths: Dict[Tuple, Optional[List[str]]] = {}
        self._epoch: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def epoch(self) -> int:
        """Current mutation epoch of the routing state."""
        return self.topology.version + sum(
            switch.table.version for switch in self.switches.values()
        )

    def path(
        self,
        src: str,
        dst: str,
        ttl: int = 64,
        extra_failed: Optional[Set[EdgeId]] = None,
    ) -> Optional[List[str]]:
        """Cached equivalent of :func:`forwarding_path`."""
        epoch = self.epoch()
        if epoch != self._epoch:
            if self._paths:
                self.invalidations += 1
            self._paths.clear()
            self._epoch = epoch
        key = (src, dst, ttl, frozenset(extra_failed) if extra_failed else None)
        try:
            result = self._paths[key]
        except KeyError:
            self.misses += 1
            result = forwarding_path(
                self.topology, self.switches, src, dst, ttl=ttl, extra_failed=extra_failed
            )
            self._paths[key] = result
        else:
            self.hits += 1
        return result


def flow_is_resilient(
    topology: Topology,
    switches: Dict[str, AbstractSwitch],
    src: str,
    dst: str,
    kappa: int,
    ttl: int = 64,
    _failed: Optional[Set[EdgeId]] = None,
    cache: Optional[RouteCache] = None,
) -> bool:
    """Does forwarding survive every combination of ≤ κ further failures?

    Recursively fails each link on the current working path and re-walks;
    links off the working path cannot affect it, so the recursion is
    complete (exhaustive for the failure sets that matter) while staying
    polynomial for the κ used in the paper's experiments (κ = 1).
    """
    failed = _failed or set()
    if cache is not None:
        path = cache.path(src, dst, ttl=ttl, extra_failed=failed)
    else:
        path = forwarding_path(
            topology, switches, src, dst, ttl=ttl, extra_failed=failed
        )
    if path is None:
        return False
    if kappa == 0:
        return True
    for u, v in zip(path, path[1:]):
        e = edge(u, v)
        if not flow_is_resilient(
            topology,
            switches,
            src,
            dst,
            kappa - 1,
            ttl=ttl,
            _failed=failed | {e},
            cache=cache,
        ):
            return False
    return True


class LegitimacyChecker:
    """Definition 1 evaluated against simulation ground truth."""

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        controllers: Dict[str, "RenaissanceController"],
        kappa: int,
        route_cache: Optional[RouteCache] = None,
    ) -> None:
        self.topology = topology
        self.switches = switches
        self.controllers = controllers
        self.kappa = kappa
        self.route_cache = route_cache

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        if self.route_cache is not None:
            return self.route_cache.path(src, dst)
        return forwarding_path(self.topology, self.switches, src, dst)

    # -- live sets -------------------------------------------------------------

    def live_controllers(self) -> List[str]:
        return [
            cid
            for cid, ctrl in self.controllers.items()
            if not ctrl.failed and self.topology.node_is_up(cid) and cid in self.topology
        ]

    def live_switches(self) -> List[str]:
        return [
            sid
            for sid in self.switches
            if sid in self.topology and self.topology.node_is_up(sid)
        ]

    # -- Definition 1 conditions --------------------------------------------------

    def views_accurate(self) -> bool:
        """Condition 1: each controller's fused view equals the live
        reachable topology."""
        for cid in self.live_controllers():
            view = self.controllers[cid].current_view()
            truth_nodes = self._reachable_live_nodes(cid)
            if set(view.nodes) != truth_nodes:
                return False
            truth_links = {
                (u, v)
                for u, v in self.topology.links
                if u in truth_nodes and v in truth_nodes
                and self.topology.link_operational(u, v)
            }
            if set(view.links) != truth_links:
                return False
        return True

    def _reachable_live_nodes(self, source: str) -> Set[str]:
        return set(self.topology.bfs_layers(source, operational_only=True))

    def managers_correct(self) -> bool:
        """Condition 2 (plus stale cleanup): every live switch is managed by
        exactly the live controllers."""
        expected = set(self.live_controllers())
        for sid in self.live_switches():
            if set(self.switches[sid].managers.members()) != expected:
                return False
        return True

    def no_stale_rules(self) -> bool:
        """Rules of failed/removed controllers are fully cleaned up."""
        live = set(self.live_controllers())
        for sid in self.live_switches():
            owners = set(self.switches[sid].table.controllers_present())
            if not owners.issubset(live):
                return False
        return True

    def flows_operational(self) -> bool:
        """Condition 3, fast mode: zero-failure forwarding works both ways
        between every live controller and every live node."""
        live_nodes = self.live_switches() + self.live_controllers()
        for cid in self.live_controllers():
            for node in live_nodes:
                if node == cid:
                    continue
                if self._path(cid, node) is None:
                    return False
                if self._path(node, cid) is None:
                    return False
        return True

    def flows_resilient(self) -> bool:
        """Condition 3, full mode: κ-failure resilience, exhaustive for the
        experiment's κ."""
        kappa = self._achievable_kappa()
        for cid in self.live_controllers():
            for node in self.live_switches() + self.live_controllers():
                if node == cid:
                    continue
                if not flow_is_resilient(
                    self.topology,
                    self.switches,
                    cid,
                    node,
                    kappa,
                    cache=self.route_cache,
                ):
                    return False
        return True

    def _achievable_kappa(self) -> int:
        """After permanent failures the live topology may no longer be
        (κ+1)-edge-connected; Lemma 7/8 then only promise κ̃ < κ resilience."""
        live = self._live_subgraph()
        connectivity = live.edge_connectivity()
        return max(0, min(self.kappa, connectivity - 1))

    def _live_subgraph(self) -> Topology:
        live = self.topology.copy()
        for node in list(live.nodes):
            if not live.node_is_up(node):
                live.remove_node(node)
        for u, v in live.failed_links():
            live.remove_link(u, v)
        return live

    # -- aggregate ------------------------------------------------------------------

    def is_legitimate(self, full: bool = False) -> bool:
        if not self.live_controllers():
            return False
        checks = (
            self.views_accurate()
            and self.managers_correct()
            and self.no_stale_rules()
            and self.flows_operational()
        )
        if not checks:
            return False
        if full:
            return self.flows_resilient()
        return True


__all__ = ["LegitimacyChecker", "RouteCache", "forwarding_path", "flow_is_resilient"]
