"""Rule generation — the paper's ``myRules(G, j, tag)`` interface.

Given the controller's accumulated topology view ``G`` (built from query
replies), :class:`RuleGenerator` computes the κ-fault-resilient flows from
the controller to every reachable node and materializes them as per-switch
:class:`~repro.switch.flow_table.Rule` sets, tagged with the current
synchronization round.

The computation is cached per (view signature, tag): Algorithm 2 refreshes
rules on *every* iteration of the do-forever loop, but the underlying flows
change only when the discovered topology or the round changes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.topology import Topology, NodeKind
from repro.flows.failover import plan_flow_rules, HopRule
from repro.switch.flow_table import Rule
from repro.switch.commands import QueryReply
from repro.core.tags import Tag


def build_view(
    owner: str,
    own_neighbors: Iterable[str],
    replies: Iterable[QueryReply],
    controller_ids: Optional[Set[str]] = None,
) -> Topology:
    """Construct the topology view ``G(S)`` of Algorithm 2 (line 4).

    Nodes: every reply's sender and every reported neighbour.  Edges: the
    union of reported adjacencies (plus the owner's own neighbourhood).
    Nodes whose kind is unknown (seen only as neighbours) are treated as
    switches — they cannot be managed until they reply anyway.
    """
    view = Topology()
    kinds: Dict[str, NodeKind] = {owner: NodeKind.CONTROLLER}
    adjacency: Dict[str, Set[str]] = {owner: set(own_neighbors)}
    for reply in replies:
        kind = NodeKind.CONTROLLER if reply.kind == "controller" else NodeKind.SWITCH
        kinds[reply.node] = kind
        adjacency.setdefault(reply.node, set()).update(reply.neighbors)
    if controller_ids:
        for cid in controller_ids:
            kinds.setdefault(cid, NodeKind.CONTROLLER)

    all_nodes: Set[str] = set(adjacency)
    for neighbors in list(adjacency.values()):
        all_nodes.update(neighbors)
    for node in sorted(all_nodes):
        view.add_node(node, kinds.get(node, NodeKind.SWITCH))
    seen: Set[FrozenSet[str]] = set()
    for node, neighbors in adjacency.items():
        for peer in neighbors:
            if peer == node:
                continue
            key = frozenset((node, peer))
            if key in seen:
                continue
            seen.add(key)
            view.add_link(node, peer)
    return view


def _view_signature(view: Topology) -> Tuple:
    return (tuple(view.nodes), tuple(view.links))


class RuleGenerator:
    """Cached ``myRules`` for one controller."""

    def __init__(self, owner: str, kappa: int) -> None:
        self.owner = owner
        self.kappa = kappa
        self._cache_key: Optional[Tuple] = None
        self._cache: Dict[str, List[Rule]] = {}
        self.computations = 0

    def rules_for_view(self, view: Topology, tag: Tag) -> Dict[str, List[Rule]]:
        """Per-switch rules realizing κ-fault-resilient flows from the owner
        to every node reachable in ``view``, tagged ``tag``."""
        key = (_view_signature(view), tag)
        if key == self._cache_key:
            return self._cache
        self.computations += 1
        per_switch: Dict[str, List[Rule]] = {}
        if self.owner in view:
            reachable = view.bfs_layers(self.owner)
            for target in sorted(reachable):
                if target == self.owner:
                    continue
                for hop_rule in plan_flow_rules(view, self.owner, target, self.kappa):
                    if not view.is_switch(hop_rule.switch):
                        continue  # controllers do not hold forwarding rules
                    per_switch.setdefault(hop_rule.switch, []).append(
                        self._materialize(hop_rule, tag)
                    )
        self._cache_key = key
        self._cache = per_switch
        return per_switch

    def my_rules(self, view: Topology, switch: str, tag: Tag) -> List[Rule]:
        """The paper's ``myRules(G, j, tag)``: the owner's rules at one
        switch.  Deduplicated: two flows may share a hop with the same
        (match, priority, action)."""
        rules = self.rules_for_view(view, tag).get(switch, [])
        unique: Dict[Tuple, Rule] = {}
        for rule in rules:
            unique[rule.key()] = rule
        return list(unique.values())

    def _materialize(self, hop_rule: HopRule, tag: Tag) -> Rule:
        return Rule(
            cid=self.owner,
            sid=hop_rule.switch,
            src=hop_rule.src,
            dst=hop_rule.dst,
            priority=hop_rule.priority,
            forward_to=hop_rule.forward_to,
            tag=tag,
            detour=hop_rule.detour,
            detour_start=hop_rule.detour_start,
        )

    def invalidate(self) -> None:
        self._cache_key = None
        self._cache = {}


__all__ = ["build_view", "RuleGenerator"]
