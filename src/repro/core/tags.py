"""Self-stabilizing bounded unique-tag generation (paper Section 4.2).

Renaissance synchronizes configuration rounds with tags from a *finite*
domain, following Alon et al. [20]: during a legal execution ``next_tag()``
returns a tag that does not currently exist anywhere in the system.

Our generator models the practically-stabilizing construction: a tag is
``(owner, value)`` with ``value`` from a bounded integer domain.  The owner
advances a counter, skipping any value it has *observed* to be alive in the
system (replyDB entries, switch meta-rules — fed back by the controller).
Because each controller runs one round at a time and the domain exceeds the
number of simultaneously-live tags, a fresh value is always found.  After a
transient fault plants arbitrary tags, at most ``DELTA_SYNCH`` rounds are
needed before tags are unique again — the bound the paper calls Δsynch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

#: Paper's Δsynch: rounds for the tag/round-synchronization layer to
#: stabilize after the last transient fault (a small constant in [20]).
DELTA_SYNCH = 3


@dataclass(frozen=True, order=True)
class Tag:
    """A bounded-domain round tag, unique per owner during legal runs."""

    owner: str
    value: int

    def __repr__(self) -> str:
        return f"Tag({self.owner}:{self.value})"


class TagGenerator:
    """Per-controller tag source with observed-tag avoidance."""

    def __init__(self, owner: str, domain: int = 65_536, start: int = 0) -> None:
        if domain < 8:
            raise ValueError("tag domain too small")
        self.owner = owner
        self.domain = domain
        self._counter = start % domain
        self.generated = 0

    def next_tag(self, observed: Optional[Iterable[Tag]] = None) -> Tag:
        """Return a tag not among ``observed`` (the live tags the controller
        can see).  Raises if the whole domain is observed — impossible when
        the domain is sized per Section 4.2."""
        in_use: Set[int] = {
            t.value for t in (observed or ()) if isinstance(t, Tag) and t.owner == self.owner
        }
        if len(in_use) >= self.domain:
            raise RuntimeError("tag domain exhausted; configure a larger domain")
        for _ in range(self.domain):
            self._counter = (self._counter + 1) % self.domain
            if self._counter not in in_use:
                self.generated += 1
                return Tag(self.owner, self._counter)
        raise RuntimeError("unreachable: domain scan found no free tag")

    def corrupt(self, counter: int) -> None:
        """Transient-fault hook: overwrite the counter arbitrarily."""
        self._counter = counter % self.domain


__all__ = ["Tag", "TagGenerator", "DELTA_SYNCH"]
