"""Algorithm variants discussed by the paper.

* :class:`NonAdaptiveController` — Section 8.1: never deletes other
  controllers' state and never C-resets; relies purely on the switches'
  (and its own reply store's) bounded-memory eviction to wash out stale
  state.  Recovers from transient faults in Θ(D) frames but its
  post-stabilization memory can be NC/nC times larger.

* :class:`ThreeTagController` — Section 6.2: the prototype variation that
  keeps the *previous* round's rules installed while writing the current
  round's, deleting only the round-before-previous.  This keeps
  κ-fault-resilient flows usable during reconfiguration (consistent
  updates), which is what the throughput experiment (Figure 15) runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.topology import Topology
from repro.core.controller import RenaissanceController
from repro.core.replydb import ReplyDB, StoredReply
from repro.core.tags import Tag
from repro.switch.commands import QueryReply
from repro.switch.flow_table import Rule


class EvictingReplyDB(ReplyDB):
    """Reply store that evicts its oldest entry instead of C-resetting —
    the constant-size-queue replacement of Section 8.1."""

    def store(self, reply: QueryReply, tag: Optional[Tag], current_tag: Tag) -> bool:
        if reply.node not in self._entries and len(self._entries) + 1 > self.max_replies:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        if tag == current_tag:
            self._entries[reply.node] = StoredReply(reply=reply, tag=tag)
        return False  # never a C-reset


class NonAdaptiveController(RenaissanceController):
    """Section 8.1: no deletions, no C-resets, Θ(D) transient recovery."""

    def _make_replydb(self) -> ReplyDB:
        return EvictingReplyDB(self.cid, self.config.max_replies)

    def _cleanup_enabled(self) -> bool:
        return False


class ThreeTagController(RenaissanceController):
    """Section 6.2: retain the previous round's rules during updates.

    ``updateRule`` replaces all of this controller's rules, so retaining is
    achieved by re-submitting the prev-tagged rules from the switch's own
    snapshot together with the fresh current-tagged rules.  Rules two
    rounds old (the paper's ``beforePrevTag``) are thereby dropped.
    Key collisions (same match/priority/action) resolve in favour of the
    fresh rule, so the stable-state table is identical to Algorithm 2's.
    """

    def _rules_to_install(self, view: Topology, switch_reply: QueryReply) -> List[Rule]:
        fresh = self.rulegen.my_rules(view, switch_reply.node, self.curr_tag)
        fresh_keys = {rule.key() for rule in fresh}
        retained = [
            rule
            for rule in switch_reply.rules
            if rule.cid == self.cid
            and not rule.is_meta
            and rule.tag == self.prev_tag
            and rule.key() not in fresh_keys
        ]
        return fresh + retained


__all__ = ["NonAdaptiveController", "ThreeTagController", "EvictingReplyDB"]
