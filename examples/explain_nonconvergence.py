"""Convergence forensics end to end: inject a known state corruption,
deny the network the time to stabilize, and let ``repro explain`` walk
the happens-before provenance DAG from the failed probe verdicts back to
the corruption that caused them — by name.

Run from the repository root::

    PYTHONPATH=src python examples/explain_nonconvergence.py

Everything here also has a CLI spelling::

    repro stabilize --topology fattree:4 --corruption mixed \
        --timeout 0.05 --reps 1 --store runs/     # persists the failed run
    repro explain --store runs/                   # names the corruption
    repro explain --store runs/ --json            # for scripts and CI
"""

import tempfile

from repro.api import AwaitLegitimacy, CorruptState, RunPlan
from repro.obs import Telemetry, explain_run, explain_rerun, use_telemetry
from repro.obs.causality import ProvenanceDAG
from repro.obs.export import trace_payload
from repro.store import RunStore, use_store


def corrupted_plan():
    """Garbage the control channels, then demand Definition-1 legitimacy
    within 50 ms of simulated time — deterministic non-convergence."""
    return (
        RunPlan("jellyfish:8", controllers=2, seed=3)
        .configure(theta=4, task_delay=0.1, robust_views=True)
        .then(
            CorruptState("channel-garbage"),
            AwaitLegitimacy(timeout=0.05),
        )
    )


def main() -> None:
    # 1. In-memory forensics: re-run the case under a private telemetry
    #    handle and explain the resulting trace.  This is exactly what
    #    the scenario/stabilize property harnesses do on a failing case.
    explanation = explain_rerun(
        lambda: corrupted_plan().session().run(), source="example"
    )
    print(explanation.render())
    assert not explanation.ok
    assert explanation.root_cause["id"] == "channel-garbage@seed=3"

    # 2. The DAG itself is queryable.  Give the same corruption time to
    #    self-stabilize and the provenance graph still shows exactly
    #    which downstream events the garbage transitively caused.
    healed = (
        RunPlan("jellyfish:8", controllers=2, seed=3)
        .configure(theta=4, task_delay=0.1, robust_views=True)
        .then(
            CorruptState("channel-garbage"),
            AwaitLegitimacy(timeout=120.0),
        )
    )
    with use_telemetry(Telemetry()) as telemetry:
        assert healed.session().run().ok  # Renaissance recovers
    dag = ProvenanceDAG.from_payload(trace_payload(telemetry))
    root = dag.roots()[0]
    victims = list(dag.descendants(root.eid))
    print(f"\ncorruption root {root.tags['corruption_id']} caused "
          f"{len(victims)} downstream events, e.g. {victims[0].label()}")

    # 3. Post-mortem from the store alone: a failed run persists its
    #    record (and, under telemetry, its TRACE next to it); `repro
    #    explain` resolves the most recent failure and — when no trace
    #    was stored — replays the run from its content-addressed
    #    identity.  Same seed, same corruption stream: the replay *is*
    #    the run.
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(tmp)
        with use_store(store):
            result = corrupted_plan().run()
        assert not result.ok
        postmortem = explain_run(store)  # no key: latest failed run
        print(f"\npost-mortem ({postmortem.source}):")
        print(postmortem.render())
        assert postmortem.root_cause["id"] == "channel-garbage@seed=3"


if __name__ == "__main__":
    main()
