#!/usr/bin/env python3
"""Self-stabilization after transient faults (Theorem 2, empirically).

The defining property of Renaissance: started from an *arbitrary* state —
here, every switch's configuration corrupted with garbage rules and
manager entries, plus wiped tables on half of them — the control plane
converges back to a legitimate state without any external help.

Run:  python examples/self_stabilization.py
"""

from repro.api import AwaitLegitimacy, Bootstrap, InjectFaults, RunPlan
from repro.sim.faults import FaultPlan
from repro.switch.flow_table import Rule


def corrupt_everything(sim, rng) -> FaultPlan:
    """Transient fault: corrupt every switch.  Odd switches get garbage
    rules and a ghost manager; even switches are wiped entirely."""
    plan = FaultPlan()
    for i, sid in enumerate(sim.topology.switches):
        if i % 2 == 0:
            plan.corrupt_switch(sim.sim.now + 0.1, sid, clear_first=True)
        else:
            garbage = Rule(
                cid="ghost-controller",
                sid=sid,
                src="ghost-controller",
                dst="nowhere",
                priority=3,
                forward_to=sim.topology.neighbors(sid)[0],
            )
            plan.corrupt_switch(
                sim.sim.now + 0.1, sid, rules=(garbage,), managers=("ghost-controller",)
            )
    return plan


def main() -> None:
    session = (
        RunPlan("Clos", controllers=2, seed=11)
        .then(
            Bootstrap(timeout=120.0),
            InjectFaults(builder=corrupt_everything, settle=0.1),
            AwaitLegitimacy(timeout=240.0),
        )
        .session()
    )
    sim = session.sim
    result = session.run()
    print(f"bootstrap: {result.bootstrap_time:.1f} s")
    print("corrupted every switch (wiped half, planted ghosts in the rest)")
    print(f"\nre-stabilized {result.recovery_time:.1f} s after the transient fault")

    ghosts = sum(
        len(sw.table.rules_of("ghost-controller")) for sw in sim.switches.values()
    )
    ghost_mgrs = sum(
        1 for sw in sim.switches.values() if "ghost-controller" in sw.managers.members()
    )
    print(f"ghost rules remaining: {ghosts}; ghost manager entries: {ghost_mgrs}")
    print(f"κ=1-resilient everywhere again: {sim.is_legitimate(full=True)}")

    # The stronger form of the claim: no clean bootstrap at all.  The run
    # *starts* from an arbitrary corrupted state (reply stores, round
    # tags, rule memory, in-flight packets — drawn from the seed) with
    # packet delivery handed to a bounded worst-case scheduler, and must
    # still reach a legitimate configuration.  See `repro stabilize`.
    from repro.api import CorruptState

    arbitrary = (
        RunPlan("Clos", controllers=2, seed=11)
        .configure(robust_views=True, scheduler="reorder")
        .then(CorruptState(corruption="mixed"), AwaitLegitimacy(timeout=240.0))
        .run()
    )
    applied = arbitrary.phase("corrupt_state").details["accounting"]["applied"]
    print(f"\narbitrary initial state ({', '.join(applied)}), adversarial delivery:")
    print(f"stabilized in {arbitrary.stabilization_time:.1f} s from power-on")


if __name__ == "__main__":
    main()
