#!/usr/bin/env python3
"""Self-stabilization after transient faults (Theorem 2, empirically).

The defining property of Renaissance: started from an *arbitrary* state —
here, every switch's configuration corrupted with garbage rules and
manager entries, plus wiped tables on half of them — the control plane
converges back to a legitimate state without any external help.

Run:  python examples/self_stabilization.py
"""

from repro import build_network, NetworkSimulation, SimulationConfig, FaultPlan
from repro.switch.flow_table import Rule


def main() -> None:
    topology = build_network("Clos", n_controllers=2, seed=11)
    sim = NetworkSimulation(topology, SimulationConfig(seed=11))
    t0 = sim.run_until_legitimate(timeout=120.0)
    print(f"bootstrap: {t0:.1f} s")

    # Transient fault: corrupt every switch.  Odd switches get garbage
    # rules and a ghost manager; even switches are wiped entirely.
    plan = FaultPlan()
    for i, sid in enumerate(topology.switches):
        if i % 2 == 0:
            plan.corrupt_switch(sim.sim.now + 0.1, sid, clear_first=True)
        else:
            garbage = Rule(
                cid="ghost-controller",
                sid=sid,
                src="ghost-controller",
                dst="nowhere",
                priority=3,
                forward_to=topology.neighbors(sid)[0],
            )
            plan.corrupt_switch(
                sim.sim.now + 0.1, sid, rules=(garbage,), managers=("ghost-controller",)
            )
    sim.inject(plan)
    sim.run_for(0.2)
    print("corrupted every switch (wiped half, planted ghosts in the rest)")
    print(f"legitimate right after the fault: {sim.is_legitimate()}")

    t1 = sim.run_until_legitimate(timeout=240.0)
    fault_at = sim.metrics.fault_time
    print(f"\nre-stabilized {t1 - fault_at:.1f} s after the transient fault")

    ghosts = sum(
        len(sw.table.rules_of("ghost-controller")) for sw in sim.switches.values()
    )
    ghost_mgrs = sum(
        1 for sw in sim.switches.values() if "ghost-controller" in sw.managers.members()
    )
    print(f"ghost rules remaining: {ghosts}; ghost manager entries: {ghost_mgrs}")
    print(f"κ=1-resilient everywhere again: {sim.is_legitimate(full=True)}")


if __name__ == "__main__":
    main()
