"""Drive the telemetry subsystem end to end: trace a bootstrap-fault-
recover run, inspect the registry, persist a TRACE record, and export
Chrome trace-event JSON you can load in https://ui.perfetto.dev.

Run from the repository root::

    PYTHONPATH=src python examples/telemetry_trace.py

Everything here also has a CLI spelling::

    repro trace record --network fattree:4 --store runs/ --out boot.trace.json
    repro trace summary --store runs/
    repro report --store runs/ --timings
"""

import json
import tempfile

from repro.api import AwaitLegitimacy, Bootstrap, InjectFaults, RunPlan
from repro.obs import Telemetry, use_telemetry
from repro.obs.export import save_trace, to_chrome_trace, validate_chrome_trace
from repro.sim.faults import FaultPlan, random_link
from repro.store import RunStore


def one_link_fault(sim, rng):
    u, v = random_link(sim.topology, rng)
    return FaultPlan().fail_link(sim.sim.now + 0.05, u, v).recover_link(
        sim.sim.now + 5.0, u, v
    )


def main() -> None:
    # 1. Record: everything inside the scope feeds the handle — phase
    #    spans, controller-iteration spans, legitimacy-probe timings,
    #    RouteCache/simulator counters, milestone marks.
    with use_telemetry(Telemetry(flight_capacity=128)) as telemetry:
        result = (
            RunPlan("fattree:4", controllers=3, seed=7)
            .configure(theta=10, task_delay=0.5)
            .then(
                Bootstrap(timeout=240.0),
                InjectFaults(builder=one_link_fault),
                AwaitLegitimacy(timeout=240.0),
            )
            .run()
        )

    print(f"bootstrap: {result.bootstrap_time}s  recovery: {result.recovery_time}s")

    # 2. The registry: hot-layer counters are pulled at snapshot time.
    snapshot = telemetry.snapshot()
    for name, value in snapshot["counters"].items():
        print(f"  {name} = {value}")
    probe = snapshot["histograms"].get("probe.wall_seconds", {})
    print(
        f"legitimacy probes: n={probe.get('count')} "
        f"mean={probe.get('mean', 0):.6f}s wall"
    )

    # 3. Host-side cost per phase (RunResult.timings exists only for
    #    telemetry-scoped runs; untimed records stay byte-identical).
    for timing in result.timings:
        print(
            f"  phase {timing['phase']}: wall={timing['wall_seconds']:.3f}s "
            f"cpu={timing['cpu_seconds']:.3f}s sim={timing['sim_seconds']:.1f}s"
        )

    # 4. Persist the session as a content-addressed TRACE record next to
    #    ordinary run records, then export Perfetto-loadable JSON.
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(tmp)
        key = save_trace(store, telemetry, label="example")
        print(f"TRACE record: {key[:12]} in {tmp}")

    doc = to_chrome_trace(telemetry)
    assert validate_chrome_trace(doc) == []
    out = "telemetry_trace.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    print(f"{len(doc['traceEvents'])} trace events -> {out} (open in Perfetto)")


if __name__ == "__main__":
    main()
