#!/usr/bin/env python3
"""In-band vs out-of-band control bootstrap, visualized (Section 8.2).

The paper's central constraint is that control is *in-band*: a controller
reaches a switch only over rules it already installed, so discovery and
rule installation must interleave, frontier by frontier.  This example
races the two deployments on the same network and renders each
controller's discovery progress over time.

Run:  python examples/inband_vs_outofband.py
"""

from repro.api import Bootstrap, RunFor, RunPlan
from repro.sim.timeline import ConvergenceTimeline


def race(out_of_band: bool) -> None:
    label = "out-of-band (dedicated mgmt network)" if out_of_band else "in-band"
    session = (
        RunPlan("Telstra", controllers=3, seed=21)
        .configure(out_of_band=out_of_band)
        .then(Bootstrap(timeout=240.0), RunFor(1.0))  # one sample past convergence
        .session()
    )
    timeline = ConvergenceTimeline(session.sim, interval=0.5)
    timeline.attach()
    result = session.run()
    print(f"\n== {label} ==")
    print("discovery progress (one column per 0.5 s; '#' = full view):")
    print(timeline.render(width=60))
    print(f"bootstrap time: {result.bootstrap_time:.1f} s, "
          f"control messages (hop-level): "
          f"{sum(l.link_transmissions for l in session.sim.metrics.loads.values())}")


def main() -> None:
    race(out_of_band=False)
    race(out_of_band=True)
    print("\nThe in-band run expands its view stepwise — each round extends"
          "\nreachability by the rules installed in the previous one — while"
          "\nthe out-of-band run sees everything within a couple of probes.")


if __name__ == "__main__":
    main()
