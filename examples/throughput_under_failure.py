#!/usr/bin/env python3
"""Data-plane throughput during a link failure (Figures 15/16/18-20).

Streams a 30-second TCP Reno flow between two hosts placed a network
diameter apart, fails a mid-path link at t=10 s, and prints the
per-second throughput, retransmission and out-of-order series — once with
Renaissance's consistent-update recovery and once with only the
pre-installed fast-failover detours.

Run:  python examples/throughput_under_failure.py [network]
"""

import sys

from repro.net.topologies import TOPOLOGY_BUILDERS
from repro.transport.traffic import (
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)
from repro.transport.stats import pearson


def sparkline(values, lo, hi):
    blocks = "▁▂▃▄▅▆▇█"
    span = max(hi - lo, 1e-9)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in values
    )


def run(network: str, recovery: bool):
    topology = TOPOLOGY_BUILDERS[network]()
    pair = place_hosts_at_max_distance(topology)
    switches = standalone_switches(topology)
    stats = TrafficRun(topology, switches, pair, recovery=recovery).run()
    return pair, stats


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "Telstra"
    pair, with_recovery = run(network, recovery=True)
    _, without_recovery = run(network, recovery=False)

    print(f"network {network}: hosts on {pair.a} and {pair.b} "
          f"({pair.distance} hops apart); link failure at t = 10 s\n")

    a = with_recovery.throughput_series()
    b = without_recovery.throughput_series()
    print(f"throughput, with recovery    (Mbit/s): {sparkline(a, 300, 550)}")
    print(f"  {[round(x) for x in a]}")
    print(f"throughput, failover only    (Mbit/s): {sparkline(b, 300, 550)}")
    print(f"  {[round(x) for x in b]}")
    print(f"\ncorrelation of the two series (Table 17): {pearson(a, b):.2f}")

    retrans = with_recovery.retransmission_series()
    ooo = with_recovery.out_of_order_series()
    print(f"\nretransmissions (%):  {sparkline(retrans, 0, 15)}  "
          f"peak {max(retrans):.1f}% at second {retrans.index(max(retrans))}")
    print(f"out-of-order    (%):  {sparkline(ooo, 0, 3)}  "
          f"peak {max(ooo):.2f}%")


if __name__ == "__main__":
    main()
