#!/usr/bin/env python3
"""Quickstart: bootstrap a self-stabilizing in-band SDN control plane.

Builds Google's B4-scale WAN with three Renaissance controllers, starts
from completely empty switch configurations, and watches the control
plane discover the network, install κ-fault-resilient flows, and reach a
legitimate state (Definition 1 of the paper) — all over in-band channels
routed through the switches' own rule tables.

Everything goes through the public facade (``repro.api``): the same ten
lines work for any topology spec — swap ``"B4"`` for ``"jellyfish:20x4"``
or ``"ring:16"`` and nothing else changes.

Run:  python examples/quickstart.py
"""

from repro.api import Bootstrap, RunPlan


def main() -> None:
    plan = RunPlan("B4", controllers=3, seed=42).then(Bootstrap(timeout=120.0))
    session = plan.session()
    topology = session.sim.topology
    print(f"network: {len(topology.switches)} switches, "
          f"{len(topology.controllers)} controllers, "
          f"diameter {topology.diameter()}, "
          f"edge connectivity {topology.edge_connectivity()}")

    result = session.run()
    if result.bootstrap_time is None:
        raise SystemExit("bootstrap did not converge (unexpected)")

    print(f"\nbootstrapped in {result.bootstrap_time:.1f} simulated seconds")
    print(f"rules installed across the network: {result.metrics['rules_installed']}")
    print(f"C-resets: {result.metrics['c_resets']}, "
          f"illegitimate deletions: {result.metrics['illegitimate_deletions']}")

    print("\nper-switch state:")
    for sid in topology.switches[:5]:
        switch = session.sim.switches[sid]
        print(f"  {sid}: {len(switch.table)} rules, "
              f"managers = {switch.managers.members()}")
    print("  ...")

    full = session.sim.is_legitimate(full=True)
    print(f"\nκ=1-fault-resilient everywhere (exhaustive check): {full}")

    print("\nthe whole run, as a serializable record:")
    print(result.to_json(indent=2))


if __name__ == "__main__":
    main()
