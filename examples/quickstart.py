#!/usr/bin/env python3
"""Quickstart: bootstrap a self-stabilizing in-band SDN control plane.

Builds Google's B4-scale WAN with three Renaissance controllers, starts
from completely empty switch configurations, and watches the control
plane discover the network, install κ-fault-resilient flows, and reach a
legitimate state (Definition 1 of the paper) — all over in-band channels
routed through the switches' own rule tables.

Run:  python examples/quickstart.py
"""

from repro import build_network, NetworkSimulation, SimulationConfig


def main() -> None:
    topology = build_network("B4", n_controllers=3, seed=42)
    print(f"network: {len(topology.switches)} switches, "
          f"{len(topology.controllers)} controllers, "
          f"diameter {topology.diameter()}, "
          f"edge connectivity {topology.edge_connectivity()}")

    sim = NetworkSimulation(topology, SimulationConfig(seed=42))
    converged_at = sim.run_until_legitimate(timeout=120.0)
    if converged_at is None:
        raise SystemExit("bootstrap did not converge (unexpected)")

    print(f"\nbootstrapped in {converged_at:.1f} simulated seconds")
    print(f"rules installed across the network: {sim.total_rules_installed()}")
    print(f"C-resets: {sim.metrics.c_resets}, "
          f"illegitimate deletions: {sim.metrics.illegitimate_deletions}")

    print("\nper-switch state:")
    for sid in topology.switches[:5]:
        switch = sim.switches[sid]
        print(f"  {sid}: {len(switch.table)} rules, "
              f"managers = {switch.managers.members()}")
    print("  ...")

    full = sim.is_legitimate(full=True)
    print(f"\nκ=1-fault-resilient everywhere (exhaustive check): {full}")


if __name__ == "__main__":
    main()
