#!/usr/bin/env python3
"""Failure recovery: the paper's Figures 10-13 scenario on one network.

Bootstraps Telstra with three controllers, then injects — one after the
other — a controller fail-stop, a permanent link failure, and a permanent
switch failure, measuring the re-convergence time after each (the paper's
O(D) recovery claims, Lemmas 7 and 8).

The whole protocol is one phased :class:`~repro.api.plan.RunPlan`: each
fault is an ``InjectFaults``/``AwaitLegitimacy`` pair, a ``RunObserver``
narrates phases as they complete, and the resulting ``RunResult`` carries
every phase's measurement.

Run:  python examples/failure_recovery.py
"""

from repro.api import AwaitLegitimacy, Bootstrap, InjectFaults, RunObserver, RunPlan
from repro.sim.faults import FaultPlan, random_link, removable_switch


class Narrator(RunObserver):
    """Print each phase's outcome the moment it finishes."""

    def on_phase_end(self, result) -> None:
        if result.phase == "bootstrap":
            print(f"bootstrap: {result.value:.1f} s" if result.ok
                  else "bootstrap timed out")
        elif result.phase == "await_legitimacy":
            print(f"  recovered in {result.value:.1f} s" if result.ok
                  else "  did NOT re-converge (unexpected)")


def fail_controller(sim, rng) -> FaultPlan:
    victim = rng.choice(sim.topology.controllers)
    print(f"\nfailing controller {victim} ...")
    return FaultPlan().fail_node(sim.sim.now + 0.1, victim)


def remove_link(sim, rng) -> FaultPlan:
    u, v = random_link(sim.topology, rng)
    print(f"\nremoving link {u} - {v} ...")
    return FaultPlan().remove_link(sim.sim.now + 0.1, u, v)


def remove_switch(sim, rng) -> FaultPlan:
    victim = removable_switch(sim.topology)
    print(f"\nremoving switch {victim} ...")
    return FaultPlan().remove_node(sim.sim.now + 0.1, victim)


def main() -> None:
    plan = (
        RunPlan("Telstra", controllers=3, seed=7)
        .then(Bootstrap(timeout=240.0))
        .then(InjectFaults(builder=fail_controller), AwaitLegitimacy(timeout=240.0))
        .then(InjectFaults(builder=remove_link), AwaitLegitimacy(timeout=240.0))
        .then(InjectFaults(builder=remove_switch), AwaitLegitimacy(timeout=240.0))
    )
    session = plan.session()
    print(f"network diameter: {session.sim.topology.diameter()}")
    result = session.run(observer=Narrator())

    print(f"\nfinal state legitimate: {session.sim.is_legitimate()}")
    print(f"illegitimate deletions over the whole run: "
          f"{result.metrics['illegitimate_deletions']}")


if __name__ == "__main__":
    main()
