#!/usr/bin/env python3
"""Failure recovery: the paper's Figures 10-13 scenario on one network.

Bootstraps Telstra with three controllers, then injects — one after the
other — a controller fail-stop, a permanent link failure, and a permanent
switch failure, measuring the re-convergence time after each (the paper's
O(D) recovery claims, Lemmas 7 and 8).

Run:  python examples/failure_recovery.py
"""

import random

from repro import build_network, NetworkSimulation, SimulationConfig, FaultPlan
from repro.sim.faults import FaultAction, random_link


def recover(sim: NetworkSimulation, what: str, plan: FaultPlan) -> None:
    fault_at = max(action.at for action in plan.actions)
    sim.inject(plan)
    sim.run_for(max(0.0, fault_at - sim.sim.now) + 0.01)
    t = sim.run_until_legitimate(timeout=240.0)
    if t is None:
        print(f"  {what}: did NOT re-converge (unexpected)")
        return
    print(f"  {what}: recovered in {t - fault_at:.1f} s")


def main() -> None:
    topology = build_network("Telstra", n_controllers=3, seed=7)
    sim = NetworkSimulation(topology, SimulationConfig(seed=7, theta=30))
    t0 = sim.run_until_legitimate(timeout=240.0)
    print(f"bootstrap: {t0:.1f} s  (diameter {topology.diameter()})")
    rng = random.Random(7)

    # 1. controller fail-stop: survivors must clean up its rules/managers.
    victim_ctrl = rng.choice(topology.controllers)
    print(f"\nfailing controller {victim_ctrl} ...")
    recover(sim, "controller fail-stop", FaultPlan().fail_node(sim.sim.now + 0.1, victim_ctrl))
    stale = sum(len(sw.table.rules_of(victim_ctrl)) for sw in sim.switches.values())
    print(f"  stale rules of {victim_ctrl} remaining: {stale}")

    # 2. permanent link failure: flows reroute, then new primaries install.
    u, v = random_link(sim.topology, rng)
    print(f"\nremoving link {u} - {v} ...")
    recover(sim, "permanent link failure", FaultPlan().remove_link(sim.sim.now + 0.1, u, v))

    # 3. permanent switch failure.
    for victim_switch in sim.topology.switches:
        probe = sim.topology.copy()
        probe.remove_node(victim_switch)
        if probe.connected():
            break
    print(f"\nremoving switch {victim_switch} ...")
    plan = FaultPlan()
    plan.actions.append(FaultAction(sim.sim.now + 0.1, "remove_node", (victim_switch,)))
    recover(sim, "permanent switch failure", plan)

    print(f"\nfinal state legitimate: {sim.is_legitimate()}")
    print(f"illegitimate deletions over the whole run: "
          f"{sim.metrics.illegitimate_deletions}")


if __name__ == "__main__":
    main()
