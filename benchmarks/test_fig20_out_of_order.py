"""Figure 20: out-of-order packet percentage per second.

Paper's shape: 'a much smaller presence' than the retransmissions — a bump
of up to ~3% right after the failure, negligible otherwise.
"""


from conftest import emit, run_figure


def test_fig20(benchmark):
    result = benchmark.pedantic(run_figure, args=("fig20",), rounds=1, iterations=1)
    series = emit(result)
    for network, values in series.items():
        baseline = max(values[2:9])
        bump = max(values[9:14])
        assert baseline < 0.5, (network, baseline)
        assert 0.0 < bump <= 10.0, (network, bump)
