"""Forensics cost benchmark (ISSUE 10).

The causal layer's enabled-path promise: recording the happens-before
DAG rides inside the existing traced-overhead budget (asserted by
``test_obs_overhead``), and the *analysis* — building the
:class:`~repro.obs.causality.ProvenanceDAG` from a TRACE payload and
running :func:`~repro.obs.explain.explain_payload` over it — stays
interactive (well under a second) even on a 15k-event jellyfish:200
trace, because ``repro explain`` runs in the inner loop of property
debugging.

Results land in the committed top-level ``BENCH_explain.json`` —
the start of the forensics perf trajectory.  ``REPRO_EXPLAIN_SPECS``
(comma-separated) overrides the topology list; CI's smoke runs
``fattree:4``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Any, Dict

from repro.api import Bootstrap, RunPlan
from repro.obs import Telemetry, use_telemetry
from repro.obs.causality import ProvenanceDAG
from repro.obs.explain import explain_payload
from repro.obs.export import trace_payload

RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_explain.json"

#: Interactive-analysis budget per spec (generous: shared-runner noise).
ANALYSIS_BUDGET_S = 2.0
REPEATS = 3


def _specs() -> list:
    env = os.environ.get("REPRO_EXPLAIN_SPECS")
    if env:
        return [s.strip() for s in env.split(",") if s.strip()]
    return ["fattree:8", "jellyfish:200"]


def _record_trace(spec: str) -> Dict[str, Any]:
    started = time.perf_counter()
    with use_telemetry(Telemetry()) as telemetry:
        result = (
            RunPlan(spec, controllers=3, seed=0)
            .configure(theta=10)
            .then(Bootstrap(timeout=600.0))
            .run()
        )
    assert result.ok, f"{spec} bootstrap timed out"
    return {
        "payload": trace_payload(telemetry),
        "trace_wall_s": round(time.perf_counter() - started, 4),
    }


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return round(best, 6)


def test_explain_analysis_cost():
    by_spec: Dict[str, Any] = {}
    for spec in _specs():
        recorded = _record_trace(spec)
        payload = recorded["payload"]
        dag_build_s = _best_of(
            REPEATS, lambda p=payload: ProvenanceDAG.from_payload(p)
        )
        explain_s = _best_of(REPEATS, lambda p=payload: explain_payload(p))
        dag = ProvenanceDAG.from_payload(payload)
        by_spec[spec] = {
            "n_causal_events": len(dag),
            "trace_wall_s": recorded["trace_wall_s"],
            "dag_build_s": dag_build_s,
            "explain_s": explain_s,
        }
        assert explain_payload(payload).ok  # the bootstrap converged
        assert dag_build_s < ANALYSIS_BUDGET_S and explain_s < ANALYSIS_BUDGET_S, (
            f"forensics over {spec} ({len(dag)} events) exceeds the "
            f"{ANALYSIS_BUDGET_S}s interactive budget"
        )
    doc = {
        "bench": "explain",
        "seed": 0,
        "controllers": 3,
        "theta": 10,
        "repeats": REPEATS,
        "specs": by_spec,
    }
    RESULT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH {json.dumps(doc, sort_keys=True)}",
          file=sys.__stdout__, flush=True)
