"""Benchmark-only experiment spec for the fabric scaling benchmark.

One unit is a fixed blocking wait plus a deterministic measurement —
the latency-dominated regime the fabric exists for (multi-host fleets
where each worker spends its unit blocked on its own simulation or I/O,
not contending for the aggregator's CPU).  A CPU-bound unit would make
the benchmark measure the host's core count instead of the fabric:
single-core CI containers cannot run two Python processes faster than
one, no matter how cheap the lease protocol is.  CPU-path correctness is
covered separately by the serial-vs-fabric golden tests, which run the
real ``scenario`` campaign through the fabric and demand bit-identical
aggregates.

Workers import this module via ``preload`` (the benchmarks directory is
on ``sys.path`` under pytest), so spawn-start fleets can resolve the
spec too.
"""

from __future__ import annotations

import time

from repro.exp.spec import CaseSpec, ExperimentSpec, SPECS, register

#: Per-unit blocking time in seconds.  Large against the lease protocol's
#: filesystem traffic (a few ms per unit), small enough that the full
#: 1/2/4-worker matrix stays under a minute.
UNIT_LATENCY = 0.5


def _bench_cases(networks=None, latency: float = UNIT_LATENCY, **_params):
    def measure(seed: int, _latency: float = latency) -> float:
        time.sleep(_latency)
        return float(seed % 97)

    return [
        CaseSpec(label="fabric-bench", network=None, measure=measure,
                 trim=False)
    ]


if "fabric-bench" not in SPECS:
    register(
        ExperimentSpec(
            name="fabric-bench",
            title="Fabric scaling benchmark unit",
            build_cases=_bench_cases,
            notes="fixed-latency unit for fabric scheduler throughput",
            default_reps=8,
        )
    )
