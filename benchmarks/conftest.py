"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 6
with a reduced repetition count (the paper uses 20; shapes are stable from
a handful), prints the regenerated rows, and asserts the qualitative
properties the paper reports.  ``pytest benchmarks/ --benchmark-only``
runs the whole evaluation; per-figure wall time is dominated by the
simulated bootstraps of the larger Rocketfuel networks.

The regenerated rows are the actual deliverable, so :func:`emit` writes
them both to the live terminal (bypassing pytest's capture) and to
``benchmarks/results/<figure>.txt`` for later inspection.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List

from repro.analysis.experiments import ExperimentResult
from repro.sim.metrics import median

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(result: ExperimentResult) -> Dict[str, List[float]]:
    """Print the regenerated figure rows and persist them; returns the
    series for shape assertions."""
    text = "\n".join(result.rows())
    print(f"\n{text}", file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", result.name.lower()).strip("-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return result.series


def med(values: List[float]) -> float:
    assert values, "experiment produced no data"
    return median(values)
