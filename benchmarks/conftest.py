"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 6
with a reduced repetition count (the paper uses 20; shapes are stable from
a handful), prints the regenerated rows, and asserts the qualitative
properties the paper reports.  ``pytest benchmarks/ --benchmark-only``
runs the whole evaluation; per-figure wall time is dominated by the
simulated bootstraps of the larger Rocketfuel networks.

Benchmarks execute through the experiment orchestration subsystem
(:mod:`repro.exp`): :func:`run_figure` resolves the figure id in the spec
registry and hands it to the parallel repetition runner.  Set
``REPRO_WORKERS=N`` to fan repetitions out over N worker processes — the
regenerated series are bit-identical to a serial run, only faster on
multi-core machines.

The regenerated rows are the actual deliverable, so :func:`emit` writes
them both to the live terminal (bypassing pytest's capture) and to
``benchmarks/results/<figure>.txt`` for later inspection.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult
from repro.sim.metrics import median

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Keyword arguments consumed by the runner itself; everything else a
#: benchmark passes is forwarded to the spec's case builder.
_RUNNER_ARGS = frozenset({"reps", "networks", "workers", "base_seed"})


def run_figure(figure: str, **kwargs) -> ExperimentResult:
    """Run one registered figure/table spec through the repetition runner.

    Spec-specific knobs (``controller_counts``, ``delays``, ``kill_counts``,
    ``fail_counts``, ...) ride along as spec params; the runner resolves
    the worker count (``REPRO_WORKERS`` override) when none is passed.
    """
    params = {k: v for k, v in kwargs.items() if k not in _RUNNER_ARGS}
    runner_kwargs = {k: v for k, v in kwargs.items() if k in _RUNNER_ARGS}
    return run_spec(figure, params=params or None, **runner_kwargs)


def emit(result: ExperimentResult) -> Dict[str, List[float]]:
    """Print the regenerated figure rows and persist them; returns the
    series for shape assertions."""
    text = "\n".join(result.rows())
    print(f"\n{text}", file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", result.name.lower()).strip("-")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return result.series


def med(values: List[float]) -> float:
    assert values, "experiment produced no data"
    return median(values)
