"""Ablation: rule-memory cost of κ-fault resilience.

κ drives the number of installed rules (Lemma 1's bound scales with the
priority levels / detours).  This bench quantifies the rules-per-switch
cost of κ=0 (no resilience) vs κ=1 (the paper's setting).
"""

from repro import build_network, NetworkSimulation, SimulationConfig


def total_rules(kappa: int) -> int:
    topo = build_network("B4", n_controllers=2, seed=3)
    sim = NetworkSimulation(topo, SimulationConfig(seed=3, kappa=kappa))
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    return sim.total_rules_installed()


def test_ablation_kappa_rule_cost(benchmark):
    def experiment():
        return total_rules(0), total_rules(1)

    rules_k0, rules_k1 = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nrules installed: kappa=0 -> {rules_k0}, kappa=1 -> {rules_k1}")
    # Detour rules cost real memory, but stay within the same order of
    # magnitude (Lemma 1's bound is linear in the priority levels).
    assert rules_k1 > rules_k0
    assert rules_k1 < 10 * rules_k0
