"""Ablation: rule-memory cost of κ-fault resilience.

κ drives the number of installed rules (Lemma 1's bound scales with the
priority levels / detours).  This bench quantifies the rules-per-switch
cost of κ=0 (no resilience) vs κ=1 (the paper's setting).
"""

from repro.api import build_simulation, resolve_topology
from repro.core.config import RenaissanceConfig


def total_rules(kappa: int) -> int:
    topo = resolve_topology("B4", seed=3, controllers=2)
    # SimulationConfig rejects kappa < 1 (the protocol's resilience floor);
    # the kappa=0 ablation goes through an explicit RenaissanceConfig.
    rena = RenaissanceConfig.for_network(
        len(topo.controllers), len(topo.switches), kappa=kappa, theta=10
    )
    sim = build_simulation(topo, seed=3, renaissance=rena)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    return sim.total_rules_installed()


def test_ablation_kappa_rule_cost(benchmark):
    def experiment():
        return total_rules(0), total_rules(1)

    rules_k0, rules_k1 = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nrules installed: kappa=0 -> {rules_k0}, kappa=1 -> {rules_k1}")
    # Detour rules cost real memory, but stay within the same order of
    # magnitude (Lemma 1's bound is linear in the priority levels).
    assert rules_k1 > rules_k0
    assert rules_k1 < 10 * rules_k0
