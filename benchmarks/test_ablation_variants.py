"""Ablation (Section 8.1): memory-adaptive Algorithm 2 vs the
non-memory-adaptive variant.

The paper's trade-off: the non-adaptive variant recovers from transient
faults in Θ(D) (it never C-resets nor deletes) but its post-stabilization
memory can be NC/nC times higher because stale rules are only washed out
by eviction, never actively removed.
"""

import pytest

from repro.api import build_simulation
from repro.core.variants import NonAdaptiveController
from repro.sim.faults import FaultPlan


def run_variant(factory=None):
    sim = build_simulation("B4", controllers=3, seed=7, controller_factory=factory)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    # Kill one controller and let the survivors settle again.
    victim = sim.topology.controllers[0]
    sim.inject(FaultPlan().fail_node(sim.sim.now + 0.1, victim))
    sim.run_for(30.0)
    stale_rules = sum(
        len(sw.table.rules_of(victim)) for sw in sim.switches.values()
    )
    return t, stale_rules, sim


def test_ablation_memory_adaptiveness(benchmark):
    def experiment():
        t_adaptive, stale_adaptive, _ = run_variant(None)
        t_nonadaptive, stale_nonadaptive, _ = run_variant(NonAdaptiveController)
        return t_adaptive, stale_adaptive, t_nonadaptive, stale_nonadaptive

    t_a, stale_a, t_n, stale_n = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(
        f"\nadaptive: bootstrap={t_a:.1f}s stale-rules-after-ctrl-death={stale_a}"
        f"\nnon-adaptive: bootstrap={t_n:.1f}s stale-rules-after-ctrl-death={stale_n}"
    )
    # The memory-adaptive algorithm cleans the dead controller's rules;
    # the non-adaptive variant leaves them to eviction (Section 8.1).
    assert stale_a == 0
    assert stale_n > 0
