"""Figure 16: throughput with only the pre-installed backup paths.

Paper's shape: almost identical to Figure 15 — the backup paths alone
sustain the plateau after the single failure.
"""


from conftest import emit, run_figure


def test_fig16(benchmark):
    result = benchmark.pedantic(
        run_figure, args=("fig16",), rounds=1, iterations=1
    )
    series = emit(result)
    for network, values in series.items():
        plateau = sum(values[4:9]) / 5
        tail = sum(values[-5:]) / 5
        assert 420 <= plateau <= 560, (network, plateau)
        # Backup paths keep carrying traffic to the end of the run.
        assert tail > plateau * 0.85, (network, tail)
