"""Figure 5: bootstrap time for the five networks with 3 controllers.

Paper's shape: medians grow from ~5 s (B4) to ~35-55 s (EBONE) with the
network dimensions.  Absolute values differ on the simulator; the ordering
small-networks-fast / large-networks-slow must hold.
"""


from conftest import emit, med, run_figure


def test_fig5(benchmark):
    result = benchmark.pedantic(
        run_figure, args=("fig5",), kwargs={"reps": 2}, rounds=1, iterations=1
    )
    series = emit(result)
    for network, values in series.items():
        assert values, f"{network} never bootstrapped"
        assert all(v > 0 for v in values)
    # Shape: the largest networks take longer than the smallest.
    assert med(series["B4"]) < med(series["AT&T"])
    assert med(series["Clos"]) < med(series["EBONE"])
    assert med(series["Telstra"]) <= med(series["EBONE"])
