"""Ablation (Section 8.2): in-band vs out-of-band control bootstrap.

The whole point of the paper is that in-band control must *bootstrap*
itself: the controller can only reach switches over rules it has already
installed.  This bench quantifies that cost by comparing against the
hybrid extension's dedicated management network, where every node is one
management hop away from every controller.
"""

from repro.api import build_simulation


def bootstrap(out_of_band: bool) -> float:
    sim = build_simulation(
        "Telstra", controllers=3, seed=5, theta=30, out_of_band=out_of_band
    )
    t = sim.run_until_legitimate(timeout=240.0)
    assert t is not None
    return t


def test_ablation_inband_vs_out_of_band(benchmark):
    def experiment():
        return bootstrap(False), bootstrap(True)

    t_inband, t_oob = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nbootstrap in-band: {t_inband:.1f} s; out-of-band: {t_oob:.1f} s")
    # Out-of-band removes the iterative reach-then-install constraint,
    # so it can never be slower than in-band on the same network.
    assert t_oob <= t_inband + 0.5
