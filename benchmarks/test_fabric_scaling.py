"""Scaling benchmark for the distributed sweep fabric (ISSUE 8).

One 8-repetition campaign of the ``fabric-bench`` spec (a fixed
0.5-second latency-bound unit — see :mod:`fabric_bench_spec` for why the
benchmark unit blocks instead of burning CPU) executed through
:func:`repro.fabric.run_fabric_campaign` against local fleets of growing
size.  Each fleet size gets a cold store, and the fleet is started — and
warmed with a throwaway campaign so worker initialization is paid before
the clock starts — ahead of the timed run, so the measurement is pure
claim/execute/heartbeat/aggregate throughput.

The acceptance number: 2 workers sustain at least 1.6x the campaign
throughput of 1 worker, i.e. the lease protocol's per-unit overhead
(two atomic creates, ttl/3 heartbeats, one rename) stays a small
fraction of a half-second unit.  Every fleet size must also produce the
identical aggregated result — the fabric is a scheduler, never a source
of numbers.  (Numeric fidelity on the real CPU-bound campaigns is pinned
by the serial-vs-fabric golden tests in ``tests/test_fabric.py``.)

Results land in ``benchmarks/results/fabric-scaling.json`` (the
committed BENCH record).  ``REPRO_FABRIC_SIZES`` (comma-separated worker
counts) restricts the matrix — CI's fabric-smoke job runs ``1,2``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time
from typing import Dict, Optional

import fabric_bench_spec  # registers the "fabric-bench" spec  # noqa: F401
from repro.fabric import LocalFleet, run_fabric_campaign

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SPEC = "fabric-bench"
REPS = 8
ALL_SIZES = [1, 2, 4]
TIMEOUT = 600.0


def _selected_sizes():
    env = os.environ.get("REPRO_FABRIC_SIZES")
    if not env:
        return ALL_SIZES
    wanted = [int(s.strip()) for s in env.split(",") if s.strip()]
    return [s for s in ALL_SIZES if s in wanted] or wanted


def _measure(workers: int) -> Dict[str, object]:
    with tempfile.TemporaryDirectory(prefix="fabric-bench-") as store_dir:
        fleet = LocalFleet(store_dir, workers=workers, poll=0.05, ttl=30.0,
                           preload=["fabric_bench_spec"])
        with fleet:
            # Warm-up: one unit per worker at disjoint seeds, so every
            # process has initialized (registry import, store handles)
            # before the timed campaign starts.
            run_fabric_campaign(
                store_dir, SPEC, reps=workers, base_seed=10_000,
                poll=0.05, timeout=TIMEOUT,
            )
            start = time.perf_counter()
            result = run_fabric_campaign(
                store_dir, SPEC, reps=REPS, base_seed=0,
                poll=0.05, timeout=TIMEOUT,
            )
            wall = time.perf_counter() - start
    series = result.series["fabric-bench"]
    assert len(series) == REPS, result.series
    return {
        "workers": workers,
        "campaign_wall_s": round(wall, 3),
        "units_per_s": round(REPS / wall, 3),
        "result_digest": json.dumps(result.to_dict(), sort_keys=True),
    }


def _emit_json(results: Dict[str, Dict[str, object]]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": "fabric-scaling",
        "spec": SPEC,
        "unit_latency_s": fabric_bench_spec.UNIT_LATENCY,
        "reps": REPS,
        "base_seed": 0,
        "sizes": {
            size: {k: v for k, v in stats.items() if k != "result_digest"}
            for size, stats in results.items()
        },
    }
    path = RESULTS_DIR / "fabric-scaling.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH {json.dumps(payload, sort_keys=True)}",
          file=sys.__stdout__, flush=True)


def test_fabric_scaling_throughput():
    results: Dict[str, Dict[str, object]] = {}
    baseline: Optional[Dict[str, object]] = None
    for workers in _selected_sizes():
        stats = _measure(workers)
        results[str(workers)] = stats
        if baseline is None:
            baseline = stats
        # Determinism across fleet sizes: same campaign, same numbers.
        assert stats["result_digest"] == baseline["result_digest"]
        speedup = (
            float(stats["units_per_s"]) / float(baseline["units_per_s"])
        )
        stats["speedup_vs_1"] = round(speedup, 2)
        print(
            f"\nfabric {workers} worker(s): {stats['campaign_wall_s']}s "
            f"wall, {stats['units_per_s']} units/s, "
            f"{stats['speedup_vs_1']}x vs 1 worker",
            file=sys.__stdout__,
            flush=True,
        )
        if workers == 2 and baseline["workers"] == 1:
            # The ISSUE acceptance bound is 1.6x; assert a slightly
            # looser floor so a loaded CI host does not flake the suite,
            # while the committed JSON records the real machine number.
            assert speedup >= 1.25, stats

    for stats in results.values():
        del stats["result_digest"]
    _emit_json(results)
