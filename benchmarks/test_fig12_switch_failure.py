"""Figure 12: recovery time after a permanent switch failure.

Paper's shape: O(D) recovery with large variance (the failed switch is
picked at random); the longest recoveries grow with the diameter.
"""


from conftest import emit, med, run_figure


def test_fig12(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig12",),
        kwargs={"reps": 2, "networks": ("B4", "Clos", "Telstra")},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network, values in series.items():
        assert values, f"{network} never re-converged"
        assert all(0 < v < 120 for v in values)
