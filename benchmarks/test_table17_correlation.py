"""Table 17: correlation between the Fig 15 and Fig 16 throughput series.

Paper's values: 0.92-0.96 across the networks.
"""


from conftest import emit, run_figure


def test_table17(benchmark):
    result = benchmark.pedantic(run_figure, args=("table17",), rounds=1, iterations=1)
    series = emit(result)
    for network, values in series.items():
        assert values[0] >= 0.85, (network, values[0])
