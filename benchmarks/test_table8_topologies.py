"""Table 8: node counts and diameters of the evaluation networks."""

from repro.net.topologies import TABLE8_EXPECTED, TOPOLOGY_BUILDERS

from conftest import emit, run_figure


def test_table8(benchmark):
    result = benchmark.pedantic(run_figure, args=("table8",), rounds=1, iterations=1)
    series = emit(result)
    for network, (nodes, diameter) in TABLE8_EXPECTED.items():
        assert series[f"{network} nodes"] == [float(nodes)]
        assert series[f"{network} diameter"] == [float(diameter)]
        # κ = 1 requires 2-edge-connectivity (Section 2.2.2).
        assert series[f"{network} edge connectivity"][0] >= 2.0
