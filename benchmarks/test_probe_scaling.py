"""Scaling benchmark for the incremental legitimacy engine (ISSUE 6).

The legitimacy probe is the hot loop of every experiment: it runs every
``convergence_interval`` and re-derives Definition 1 from the ground
truth.  With dependency-tracked invalidation the steady-state probe walks
*zero* forwarding paths — only flows whose visited set was actually
perturbed since the last probe are re-walked.  This bench measures that
on growing fabrics, against the legacy epoch-clearing baseline
(``RouteCache.incremental = False``: every mutation drops the whole memo
and re-dirties every pair).

Metrics per topology:

- ``probe_walks``  — forwarding walks performed *inside* legitimacy
  probes (cache misses during ``is_legitimate``); the number the
  incremental engine drives to ~0.
- ``total_walks`` / ``cache_hits`` — all walks vs. memo hits over the
  whole bootstrap (includes the unavoidable first walk per flow and
  re-walks of genuinely changed flows).
- ``bootstrap_wall_s`` — host wall-clock for the full bootstrap.

Results land in ``benchmarks/results/probe-scaling.json`` (the committed
BENCH record).  ``REPRO_PROBE_SIZES`` (comma-separated specs) restricts
the matrix — CI's perf-smoke job runs ``fattree:4`` only.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Dict, Optional

from repro.net.topologies import attach_controllers
from repro.scenarios.generators import parse_topology
from repro.sim.network_sim import NetworkSimulation, SimulationConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Fabrics ordered by size; the baseline (epoch-clearing) comparison only
#: runs on the small ones — on fattree:16 the baseline alone takes ~40 s,
#: which is exactly the cost this PR removes.
ALL_SPECS = ["fattree:4", "fattree:8", "jellyfish:20", "jellyfish:200"]
BASELINE_SPECS = {"fattree:4", "fattree:8"}


def _selected_specs():
    env = os.environ.get("REPRO_PROBE_SIZES")
    if not env:
        return ALL_SPECS
    wanted = [s.strip() for s in env.split(",") if s.strip()]
    return [s for s in ALL_SPECS if s in wanted] or wanted


def _measure(spec: str, incremental: bool, timeout: float = 600.0) -> Dict[str, float]:
    topology = parse_topology(spec, seed=0)
    attach_controllers(topology, 3, seed=0)
    sim = NetworkSimulation(topology, SimulationConfig(seed=0, theta=10))
    cache = sim.route_cache
    assert cache is not None
    cache.incremental = incremental

    probe_walks = 0
    inner = sim.is_legitimate

    def counting_probe(full: bool = False) -> bool:
        nonlocal probe_walks
        before = cache.misses
        result = inner(full=full)
        probe_walks += cache.misses - before
        return result

    sim.is_legitimate = counting_probe  # type: ignore[method-assign]

    start = time.perf_counter()
    converged = sim.run_until_legitimate(timeout=timeout)
    wall = time.perf_counter() - start
    assert converged is not None, f"{spec} bootstrap timed out ({timeout}s)"
    return {
        "converged_at": converged,
        "bootstrap_wall_s": round(wall, 3),
        "probe_walks": probe_walks,
        "total_walks": cache.misses,
        "cache_hits": cache.hits,
        "invalidations": cache.invalidations,
        "switches": len(topology.switches),
        "nodes": len(topology.nodes),
    }


def _emit_json(results: Dict[str, Dict[str, Optional[Dict[str, float]]]]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": "probe-scaling",
        "seed": 0,
        "controllers": 3,
        "theta": 10,
        "specs": results,
    }
    path = RESULTS_DIR / "probe-scaling.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH {json.dumps(payload, sort_keys=True)}", file=sys.__stdout__, flush=True)


def test_probe_scaling_incremental_vs_epoch_clearing():
    results: Dict[str, Dict[str, Optional[Dict[str, float]]]] = {}
    for spec in _selected_specs():
        incr = _measure(spec, incremental=True)
        base = _measure(spec, incremental=False) if spec in BASELINE_SPECS else None
        results[spec] = {"incremental": incr, "baseline": base}

        # Steady state: once legitimate, nothing is dirty between probes —
        # the convergence probe itself must walk (almost) nothing.  The
        # epoch-clearing baseline re-walks every pair every probe.
        if base is not None:
            assert base["probe_walks"] >= 5 * max(1, incr["probe_walks"]), (
                spec,
                base["probe_walks"],
                incr["probe_walks"],
            )
            # Identical convergence instant: the cache discipline must not
            # change simulation semantics, only host-side work.
            assert base["converged_at"] == incr["converged_at"]
        # The first walk of each flow is unavoidable; the memo must be
        # doing real work beyond that.
        assert incr["cache_hits"] > incr["total_walks"]

    _emit_json(results)


def test_fattree16_bootstrap_completes():
    """The scale unlock: fattree:16 (320 switches) bootstraps to
    legitimacy in seconds — previously ~40 s of host time, dominated by
    epoch-cleared probe re-walks."""
    env = os.environ.get("REPRO_PROBE_SIZES")
    if env and "fattree:16" not in env:
        import pytest

        pytest.skip("REPRO_PROBE_SIZES excludes fattree:16")
    stats = _measure("fattree:16", incremental=True, timeout=600.0)
    # Near-zero: the converging probe may re-walk the handful of flows
    # whose rules landed just before it fired, nothing else.
    assert stats["probe_walks"] <= 10
    print(
        f"\nfattree:16 bootstrap: {stats['bootstrap_wall_s']}s wall, "
        f"{stats['total_walks']} walks, {stats['cache_hits']} hits",
        file=sys.__stdout__,
        flush=True,
    )
