"""Figure 11: recovery after failing 1-6 of 7 controllers simultaneously.

Paper's shape: no clear relation between the number of failed controllers
and the recovery time.
"""


from conftest import emit, med, run_figure


def test_fig11(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig11",),
        kwargs={"reps": 1, "networks": ("Telstra",), "kill_counts": (1, 3, 6)},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    medians = [med(series[f"Telstra kill={k}"]) for k in (1, 3, 6)]
    assert all(0 < m < 120 for m in medians)
    # "No significant role": killing 6 costs at most ~4x killing 1.
    assert max(medians) <= 4 * min(medians) + 5.0
