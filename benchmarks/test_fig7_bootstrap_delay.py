"""Figure 7: bootstrap time as a function of the task delay.

Paper's shape: bootstrap time is roughly proportional to the delay over
the moderate range.  (The paper's rightmost congestion peaks at very small
delays come from real-switch queueing, which the simulator does not model;
the small-delay end flattens here instead — recorded in EXPERIMENTS.md.)
"""


from conftest import emit, med, run_figure


def test_fig7(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig7",),
        kwargs={
            "reps": 1,
            "networks": ("B4", "Clos", "Telstra"),
            "delays": (1.0, 0.5, 0.1, 0.02),
            "n_controllers": 7,
        },
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network in ("B4", "Clos", "Telstra"):
        slow = med(series[f"{network} d=1.0"])
        fast = med(series[f"{network} d=0.1"])
        assert fast < slow  # proportionality over the moderate range
