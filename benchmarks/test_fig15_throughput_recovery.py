"""Figure 15: TCP throughput with a link failure at t=10 s, with recovery.

Paper's shape: a ~500 Mbit/s plateau, one valley at the failure second
(dropping to roughly 480-510 in the paper), full recovery afterwards.
"""


from conftest import emit, run_figure


def test_fig15(benchmark):
    result = benchmark.pedantic(
        run_figure, args=("fig15",), rounds=1, iterations=1
    )
    series = emit(result)
    for network, values in series.items():
        plateau = sum(values[4:9]) / 5
        valley = min(values[9:13])
        tail = sum(values[-5:]) / 5
        assert 420 <= plateau <= 560, (network, plateau)
        assert valley < plateau * 0.95, (network, "no visible valley")
        assert tail > plateau * 0.9, (network, "no recovery")
