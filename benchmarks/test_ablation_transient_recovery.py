"""Ablation (Sections 3.4.3 / 8.1): recovery from rare transient faults.

Corrupts every switch configuration mid-run (the paper's arbitrary state
corruption, restricted to the switch side) and measures re-stabilization
for the memory-adaptive algorithm and the non-memory-adaptive variant.
The paper's claim: both recover; the non-adaptive variant's bound is
Θ(D) while Algorithm 2's worst case is O(D²N) — in practice (benign
corruption patterns) both re-stabilize within a few rounds.
"""

from repro import FaultPlan
from repro.api import build_simulation
from repro.core.variants import NonAdaptiveController


def corrupt_and_recover(factory) -> float:
    sim = build_simulation("B4", controllers=2, seed=13, controller_factory=factory)
    topo = sim.topology
    t0 = sim.run_until_legitimate(timeout=120.0)
    assert t0 is not None
    # Wipe every switch configuration (ghost-rule cleanup is covered by
    # the memory-adaptiveness ablation; the non-adaptive variant removes
    # ghosts only via eviction, so wiping keeps the comparison fair).
    plan = FaultPlan()
    for sid in topo.switches:
        plan.corrupt_switch(sim.sim.now + 0.1, sid, clear_first=True)
    sim.inject(plan)
    sim.run_for(0.2)
    t1 = sim.run_until_legitimate(timeout=240.0)
    assert t1 is not None
    return t1 - sim.metrics.fault_time


def test_ablation_transient_recovery(benchmark):
    def experiment():
        adaptive = corrupt_and_recover(None)
        non_adaptive_topo_note = corrupt_and_recover(NonAdaptiveController)
        return adaptive, non_adaptive_topo_note

    t_adaptive, t_nonadaptive = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(
        f"\ntransient-fault recovery: adaptive={t_adaptive:.1f}s, "
        f"non-adaptive={t_nonadaptive:.1f}s"
    )
    assert t_adaptive < 60.0
    assert t_nonadaptive < 60.0
