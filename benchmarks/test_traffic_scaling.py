"""Scaling benchmark for the flow-level traffic engine (ISSUE 7).

One fault-recovery campaign (``churn`` on jellyfish:200) at growing flow
counts: the two-level grouping collapses 10⁵–10⁶ flows into a few
thousand (pair, ECMP-path) groups, so the water-filling allocator and the
reroute remap cost is a function of pairs × paths, not flows.  The bench
pins the acceptance numbers:

- ``1e5`` flows complete the full campaign (simulate + inject + repair +
  metrics) well under a minute of host wall-clock;
- ``1e6`` flows re-converge after a link failure in seconds — measured
  directly as the wall time of one plan/install/reroute cycle on the
  live engine.

Results land in ``benchmarks/results/traffic-scaling.json`` (the
committed BENCH record).  ``REPRO_TRAFFIC_SIZES`` (comma-separated flow
counts) restricts the matrix — CI's traffic-smoke job runs ``100000``
only.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Dict, Optional

import pytest

np = pytest.importorskip("numpy")

from repro.traffic.spec import run_traffic

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

TOPOLOGY = "jellyfish:200"
ALL_SIZES = [100_000, 1_000_000]


def _selected_sizes():
    env = os.environ.get("REPRO_TRAFFIC_SIZES")
    if not env:
        return ALL_SIZES
    wanted = [int(s.strip()) for s in env.split(",") if s.strip()]
    return [s for s in ALL_SIZES if s in wanted] or wanted


def _measure(flows: int) -> Dict[str, object]:
    start = time.perf_counter()
    result = run_traffic(TOPOLOGY, seed=0, flows=flows, pairs=256,
                         campaign="churn", duration=12.0)
    wall = time.perf_counter() - start
    assert result.ok, f"{flows}-flow campaign failed"
    block = result.traffic
    assert block is not None
    return {
        "campaign_wall_s": round(wall, 3),
        "flows": block["flows"],
        "completed": block["completed"],
        "goodput_mbps": round(block["goodput_mbps"], 1),
        "goodput_churn_mbps": round(block["goodput_churn_mbps"], 1),
        "n_faults": block["n_faults"],
        "disrupted_per_fault": block["disrupted_per_fault"],
        "fct_p99_s": block["fct_p99_s"],
        "rules_installed": block.get("rules_installed"),
    }


def _measure_reconvergence(flows: int) -> Dict[str, float]:
    """Wall time of one link-failure reroute at scale: replan + reinstall
    the tenant rules against the failed fabric, then remap every flow to
    its surviving (or fresh) ECMP path."""
    from repro.scenarios.generators import parse_topology
    from repro.sim.faults import random_link
    from repro.sim.network_sim import NetworkSimulation, SimulationConfig
    from repro.traffic.engine import FluidTrafficEngine
    from repro.traffic.routes import TenantFlows
    from repro.traffic.workload import WorkloadSpec

    import random

    topology = parse_topology(TOPOLOGY, seed=0)
    sim = NetworkSimulation(topology, SimulationConfig(seed=0))
    workload = WorkloadSpec(flows=flows, pairs=256).generate(
        topology.switches, seed=0, duration=12.0
    )
    tenant = TenantFlows(topology, sim.switches, workload.pairs, ecmp=4)
    tenant.install()
    engine = FluidTrafficEngine(topology, sim.switches, workload)
    engine.advance(0.5)  # admit and route every flow

    u, v = random_link(topology, random.Random(0))
    start = time.perf_counter()
    topology.set_link_up(u, v, False)
    engine.reroute(now=0.5)          # flows on the dead link stall
    tenant.install()                 # repair: replan around the failure
    disrupted = engine.reroute(now=0.5, count_disruptions=False)
    wall = time.perf_counter() - start
    assert disrupted == 0  # the repair pass is lossless
    return {
        "reconverge_wall_s": round(wall, 3),
        "disrupted": engine.disrupted_total,
    }


def _emit_json(results: Dict[str, Dict[str, object]]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": "traffic-scaling",
        "topology": TOPOLOGY,
        "seed": 0,
        "pairs": 256,
        "campaign": "churn",
        "sizes": results,
    }
    path = RESULTS_DIR / "traffic-scaling.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH {json.dumps(payload, sort_keys=True)}",
          file=sys.__stdout__, flush=True)


def test_traffic_scaling_campaign_and_reconvergence():
    results: Dict[str, Dict[str, object]] = {}
    for flows in _selected_sizes():
        stats = _measure(flows)
        stats.update(_measure_reconvergence(flows))
        results[str(flows)] = stats

        # The acceptance bounds (generous: CI hardware varies).
        if flows <= 100_000:
            assert stats["campaign_wall_s"] < 60.0, stats
        assert stats["reconverge_wall_s"] < 10.0, stats
        assert stats["completed"] > 0
        assert stats["n_faults"] >= 1
        print(
            f"\n{TOPOLOGY} {flows} flows: campaign "
            f"{stats['campaign_wall_s']}s wall, reconverge "
            f"{stats['reconverge_wall_s']}s, "
            f"{stats['disrupted']} disrupted",
            file=sys.__stdout__,
            flush=True,
        )

    _emit_json(results)
