"""Figure 19: 'BAD TCP' flag percentage per second.

Paper's shape: like the retransmissions, a spike to the 10-18% band after
the failure; BAD TCP always dominates pure retransmissions.
"""


from conftest import emit, run_figure


def test_fig19(benchmark):
    result = benchmark.pedantic(run_figure, args=("fig19",), rounds=1, iterations=1)
    series = emit(result)
    retrans = run_figure("fig18").series
    for network, values in series.items():
        spike = max(values[9:14])
        assert 5.0 <= spike <= 35.0, (network, spike)
        # BAD TCP is a superset of retransmissions, second by second.
        for bad, rt in zip(values, retrans[network]):
            assert bad >= rt - 1e-9
