"""Figure 14: recovery after 2/4/6 simultaneous permanent link failures.

Paper's shape: the number of simultaneous failures plays no significant
role in the recovery time.
"""


from conftest import emit, med, run_figure


def test_fig14(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig14",),
        kwargs={"reps": 1, "networks": ("B4", "Clos", "Telstra"), "fail_counts": (2, 4, 6)},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network in ("B4", "Clos", "Telstra"):
        medians = [med(series[f"{network} k={k}"]) for k in (2, 4, 6)]
        assert all(0 < m < 120 for m in medians)
        assert max(medians) <= 4 * min(medians) + 5.0
