"""Figure 10: recovery time after one controller fail-stop.

Paper's shape: recovery is O(D) — a few seconds, clearly below the
bootstrap time of the same network.  Detection is Θ-bound, so networks
with Θ=30 recover more slowly than Θ=10 ones.
"""


from conftest import emit, med, run_figure


def test_fig10(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig10",),
        kwargs={"reps": 2, "networks": ("B4", "Clos", "Telstra")},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network, values in series.items():
        assert values, f"{network} never re-converged"
        assert all(0 < v < 120 for v in values)
