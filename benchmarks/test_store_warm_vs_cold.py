"""Run store: warm-store sweep vs cold sweep timing.

A cold ``fig5`` sweep simulates every bootstrap; the identical warm sweep
must perform zero simulations and complete in O(load) — the time to read
and validate a handful of JSON records.  The printed ratio is the
benchmark's deliverable; the assertions pin the properties that make the
ratio meaningful (byte-identical output, all-hit cache accounting) plus a
generous floor on the speedup itself.
"""

import pathlib
import sys
import time

from repro.exp.runner import run_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_store_warm_vs_cold(tmp_path, benchmark):
    store = tmp_path / "store"
    kwargs = dict(reps=3, networks=("B4", "Clos"), base_seed=0, store=store)

    t0 = time.perf_counter()
    cold = run_spec("fig5", **kwargs)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_spec("fig5", **kwargs), rounds=1, iterations=1
    )
    warm_s = time.perf_counter() - t0

    lines = [
        "== Run store: warm vs cold fig5 sweep (B4+Clos, 3 reps) ==",
        f"cold sweep: {cold_s:8.3f} s  ({cold.cache_stats['simulated']} simulated)",
        f"warm sweep: {warm_s:8.3f} s  ({warm.cache_stats['hit']} loaded)",
        f"speedup:    {cold_s / max(warm_s, 1e-9):8.1f}x",
    ]
    text = "\n".join(lines)
    print(f"\n{text}", file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "store-warm-vs-cold.txt").write_text(text + "\n")

    assert cold.cache_stats == {"hit": 0, "derived": 0, "simulated": 6}
    assert warm.cache_stats == {"hit": 6, "derived": 0, "simulated": 0}
    assert warm.to_json() == cold.to_json()
    # O(load): reading six records must beat six simulated bootstraps by a
    # wide margin; 5x is far below the observed two orders of magnitude.
    assert warm_s * 5 < cold_s
