"""Ablation: failover coverage beyond the paper's κ = 1 setting.

The detour construction is exact for one link failure (the setting of the
paper's entire evaluation).  For κ = 2 on a 3-edge-connected substrate it
is best-effort: a second failure falls back through the remaining detour
priorities.  This bench quantifies the double-failure coverage achieved —
the fraction of failed-link pairs on the working path that forwarding
survives.
"""

import itertools
import random

from repro.net.topology import edge
from repro.net.topologies import random_k_connected
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import Rule
from repro.flows.failover import plan_flow_rules
from repro.core.legitimacy import forwarding_path


def build_fabric(kappa: int, seed: int):
    topo = random_k_connected(14, 4, seed=seed)
    rng = random.Random(seed)
    src, dst = rng.sample(topo.switches, 2)
    switches = {
        s: AbstractSwitch(
            s, alive_neighbors=(lambda x: (lambda: topo.operational_neighbors(x)))(s)
        )
        for s in topo.switches
    }
    for hop_rule in plan_flow_rules(topo, src, dst, kappa=kappa):
        switches[hop_rule.switch].table.install(
            Rule(
                cid="c", sid=hop_rule.switch, src=hop_rule.src, dst=hop_rule.dst,
                priority=hop_rule.priority, forward_to=hop_rule.forward_to,
                detour=hop_rule.detour, detour_start=hop_rule.detour_start,
            )
        )
    return topo, switches, src, dst


def double_failure_coverage(seed: int) -> float:
    topo, switches, src, dst = build_fabric(kappa=2, seed=seed)
    base = forwarding_path(topo, switches, src, dst)
    assert base is not None
    base_edges = [edge(u, v) for u, v in zip(base, base[1:])]
    survived = total = 0
    for e1, e2 in itertools.combinations(base_edges, 2):
        total += 1
        if forwarding_path(topo, switches, src, dst, extra_failed={e1, e2}) is not None:
            survived += 1
    # Also pair each on-path edge with every off-path edge touching the path.
    return survived / total if total else 1.0


def test_ablation_kappa2_double_failure_coverage(benchmark):
    def experiment():
        rates = [double_failure_coverage(seed) for seed in range(5)]
        return sum(rates) / len(rates)

    coverage = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nkappa=2 double-failure coverage on the working path: {coverage:.0%}")
    # Best-effort but substantial: the fallback detour chain covers most
    # double failures on richly connected graphs.
    assert coverage >= 0.5


def test_kappa1_single_failure_coverage_is_total(benchmark):
    def experiment():
        for seed in range(5):
            topo, switches, src, dst = build_fabric(kappa=1, seed=seed)
            base = forwarding_path(topo, switches, src, dst)
            assert base is not None
            for u, v in zip(base, base[1:]):
                assert forwarding_path(
                    topo, switches, src, dst, extra_failed={edge(u, v)}
                ) is not None
        return True

    assert benchmark.pedantic(experiment, rounds=1, iterations=1)
