"""Figure 13: recovery time after a permanent link failure.

Paper's shape: O(D) recovery, a few seconds on every network.
"""

from repro.analysis.experiments import fig13_link_failure

from conftest import emit


def test_fig13(benchmark):
    result = benchmark.pedantic(
        fig13_link_failure,
        kwargs={"reps": 2, "networks": ("B4", "Clos", "Telstra")},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network, values in series.items():
        assert values, f"{network} never re-converged"
        assert all(0 < v < 120 for v in values)
