"""Figure 13: recovery time after a permanent link failure.

Paper's shape: O(D) recovery, a few seconds on every network.
"""


from conftest import emit, run_figure


def test_fig13(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig13",),
        kwargs={"reps": 2, "networks": ("B4", "Clos", "Telstra")},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for network, values in series.items():
        assert values, f"{network} never re-converged"
        assert all(0 < v < 120 for v in values)
