"""Scenario campaign benchmarks: generated topologies × fault workloads.

Beyond the paper's Section 6 figures: recovery-time distributions for
randomized fault campaigns on generated topologies, run through the same
parallel repetition runner as every figure (``REPRO_WORKERS`` applies).
Every repetition derives its topology, controller placement, and
campaign from its own seed, so the regenerated rows are deterministic.
"""

from conftest import emit, med, run_figure


def _emit_named(result, topology, campaign):
    """Both benchmarks run the same 'scenario' spec; qualify the result
    name so emit() persists them to distinct files."""
    result.name = f"{result.name} — {topology} {campaign}"
    return emit(result)


def test_scenario_churn_on_jellyfish(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("scenario",),
        kwargs={"reps": 3, "topology": "jellyfish:20", "campaign": "churn"},
        rounds=1,
        iterations=1,
    )
    series = _emit_named(result, "jellyfish:20", "churn")
    values = series["jellyfish:20 churn"]
    assert values, "no repetition re-converged"
    assert all(0 <= v < 120 for v in values)


def test_scenario_mixed_on_fat_tree(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("scenario",),
        kwargs={"reps": 3, "topology": "fattree:4", "campaign": "mixed"},
        rounds=1,
        iterations=1,
    )
    series = _emit_named(result, "fattree:4", "mixed")
    values = series["fattree:4 mixed"]
    assert values, "no repetition re-converged"
    assert med(values) < 60
