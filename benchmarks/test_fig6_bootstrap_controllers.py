"""Figure 6: bootstrap time vs controller count (Rocketfuel networks).

Paper's shape: bootstrap grows with the network and only mildly with the
controller count (more controllers ⇒ slightly longer, never dramatic).
"""


from conftest import emit, med, run_figure


def test_fig6(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig6",),
        kwargs={"reps": 1, "controller_counts": (1, 7)},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    for label, values in series.items():
        assert values, f"{label} never bootstrapped"
    for network in ("Telstra", "AT&T", "EBONE"):
        lone = med(series[f"{network} x1"])
        many = med(series[f"{network} x7"])
        # Mild effect: 7 controllers cost at most ~4x one controller.
        assert many <= 4 * lone + 5.0
