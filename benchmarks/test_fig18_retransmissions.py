"""Figure 18: retransmission percentage per second.

Paper's shape: below 1% before the failure, a spike into the 10-15% band
in the second after the failure, quick de-escalation.
"""


from conftest import emit, run_figure


def test_fig18(benchmark):
    result = benchmark.pedantic(run_figure, args=("fig18",), rounds=1, iterations=1)
    series = emit(result)
    for network, values in series.items():
        baseline = max(values[2:9])
        spike = max(values[9:14])
        tail = max(values[16:])
        assert baseline < 2.0, (network, baseline)
        assert 5.0 <= spike <= 30.0, (network, spike)
        assert tail < 2.0, (network, "no de-escalation")
