"""Self-stabilization benchmarks: convergence from arbitrary initial state.

The paper's headline guarantee, measured directly: corrupt a freshly
built network to an arbitrary configuration (flow tables, reply stores,
round tags, in-flight channels), optionally hand packet delivery to a
bounded adversarial scheduler, and time the march back to Definition 1.
Runs through the same parallel repetition runner as every figure
(``REPRO_WORKERS`` applies); every repetition derives its topology,
placement, corrupted state, and scheduler randomness from its own seed.
"""

from conftest import emit, med, run_figure


def _emit_named(result, label):
    """All benchmarks run the same 'stabilize' spec; qualify the result
    name so emit() persists them to distinct files."""
    result.name = f"{result.name} — {label}"
    return emit(result)


def test_stabilize_mixed_on_fat_tree(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("stabilize",),
        kwargs={"reps": 3, "topology": "fattree:4", "corruption": "mixed"},
        rounds=1,
        iterations=1,
    )
    series = _emit_named(result, "fattree:4 mixed")
    values = series["fattree:4 mixed none"]
    assert len(values) == 3, "a repetition failed to stabilize"
    assert med(values) < 60


def test_stabilize_clogged_under_adversarial_delivery(benchmark):
    """Worst-case-within-bounds delivery on pre-clogged rule memory: the
    nastiest combination — stabilization must still complete."""
    result = benchmark.pedantic(
        run_figure,
        args=("stabilize",),
        kwargs={
            "reps": 3,
            "topology": "jellyfish:20",
            "corruption": "clogged-memory",
            "scheduler": "max-delay",
        },
        rounds=1,
        iterations=1,
    )
    series = _emit_named(result, "jellyfish:20 clogged max-delay")
    values = series["jellyfish:20 clogged-memory max-delay"]
    assert len(values) == 3, "a repetition failed to stabilize"
    assert all(0 <= v < 240 for v in values)
