"""Telemetry overhead benchmark (ISSUE 9).

The telemetry subsystem's contract has two halves:

- **disabled** — no active handle: every instrumented site is one
  ``is not None`` check, so a run must stay within noise of the
  pre-telemetry code (<5% wall on a fattree:8 bootstrap) and produce
  bit-identical measurements;
- **enabled** — full tracing (spans, flight ring, kind counts, pulled
  counters): <25% wall overhead over the disabled run.

Both are measured on repeated fattree:8 bootstraps through the facade
(the path every figure uses), best-of-N to shed scheduler noise.
Simulation *semantics* are asserted exactly: identical convergence
instant and metrics snapshot with and without the handle.

Results land in ``benchmarks/results/obs-overhead.json`` (the committed
BENCH record).  ``REPRO_OBS_SPEC`` overrides the topology —
CI's obs-smoke job runs ``fattree:4``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Dict

from repro.api import Bootstrap, RunPlan
from repro.obs import Telemetry, use_telemetry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Overhead bound asserted by CI: the acceptance criterion (25%) plus
#: slack for shared-runner scheduling noise on a sub-second workload;
#: the committed BENCH record tracks the real ratio.
ENABLED_BUDGET = 1.40
REPEATS = 5


def _spec() -> str:
    return os.environ.get("REPRO_OBS_SPEC", "fattree:8")


def _plan(spec: str):
    return (
        RunPlan(spec, controllers=3, seed=0)
        .configure(theta=10)
        .then(Bootstrap(timeout=600.0))
    )


def _timed(spec: str, telemetry: bool):
    start = time.perf_counter()
    if telemetry:
        with use_telemetry(Telemetry()):
            run = _plan(spec).run()
    else:
        run = _plan(spec).run()
    return time.perf_counter() - start, run


def _paired_best_of(spec: str, repeats: int):
    """Best-of-N for the disabled and enabled runs, *interleaved* — the
    two arms alternate within each repeat, so slow drift (CPU frequency,
    background load) biases neither side of the ratio."""
    best = {False: float("inf"), True: float("inf")}
    result = {False: None, True: None}
    for _ in range(repeats):
        for telemetry in (False, True):
            wall, run = _timed(spec, telemetry)
            best[telemetry] = min(best[telemetry], wall)
            result[telemetry] = run
    for telemetry in (False, True):
        run = result[telemetry]
        assert run is not None and run.ok, f"{spec} bootstrap timed out"
    return tuple(
        {
            "wall_s": round(best[telemetry], 4),
            "converged_at": result[telemetry].bootstrap_time,
        }
        for telemetry in (False, True)
    )


def test_obs_overhead_disabled_and_enabled():
    spec = _spec()

    # Warm every lazy import/cache outside the timed region.
    _plan(spec).run()

    off, on = _paired_best_of(spec, REPEATS)

    # Semantics first: telemetry must not move the simulation at all.
    plain = _plan(spec).run()
    with use_telemetry(Telemetry()):
        traced = _plan(spec).run()
    assert traced.bootstrap_time == plain.bootstrap_time
    assert traced.metrics == plain.metrics

    ratio = on["wall_s"] / off["wall_s"]
    payload = {
        "bench": "obs-overhead",
        "spec": spec,
        "seed": 0,
        "controllers": 3,
        "theta": 10,
        "repeats": REPEATS,
        "disabled": off,
        "enabled": on,
        "enabled_over_disabled": round(ratio, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "obs-overhead.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nBENCH {json.dumps(payload, sort_keys=True)}", file=sys.__stdout__, flush=True)

    assert ratio < ENABLED_BUDGET, (
        f"full tracing costs {ratio:.2f}x over disabled "
        f"(budget {ENABLED_BUDGET}x) on {spec}"
    )


def test_disabled_path_does_zero_instrumentation_work():
    """The <5% disabled-wall criterion cannot be measured against the
    pre-telemetry build from inside this tree (and sub-second workloads
    drown in scheduler noise anyway), so assert the structural property
    it follows from: with no active handle, a run allocates no trace
    ring, no kind tally, and no observer/provider — every instrumented
    site collapses to one ``is not None`` check."""
    session = _plan(_spec()).session()
    sim = session.sim
    assert sim._telemetry is None
    assert sim.sim._trace is None
    assert sim.sim._kind_counts is None
    assert sim.sim._causal is None  # no happens-before recording either
    assert sim.metrics._observers == []
    result = session.run()
    assert result.ok
    assert result.timings == []
    assert "timings" not in result.to_dict()
