"""Figure 9: per-node communication cost of the most loaded controller.

Paper's shape: once normalized by the iterations to converge, the cost per
node is of the same order across all networks (~5-25), slightly higher for
the largest ones.
"""


from conftest import emit, med, run_figure


def test_fig9(benchmark):
    result = benchmark.pedantic(
        run_figure,
        args=("fig9",),
        kwargs={"reps": 1, "networks": ("B4", "Clos", "Telstra", "EBONE")},
        rounds=1,
        iterations=1,
    )
    series = emit(result)
    medians = {network: med(values) for network, values in series.items()}
    assert all(v > 0 for v in medians.values())
    # Same order of magnitude across networks (paper: similar overheads).
    assert max(medians.values()) <= 40 * min(medians.values())
